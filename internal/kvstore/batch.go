package kvstore

import (
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"c3/internal/core"
	"c3/internal/ring"
	"c3/internal/wire"
)

// This file is the coordinator half of the batch path (MultiGet/MultiPut):
// scatter-gather over replica-group sub-batches.
//
// A client batch of K keys is partitioned by the ring into at most
// min(K, groups) sub-batches. Each sub-batch is ranked and admitted through
// the shared selector as ONE rate-limited RPC carrying n keys — the limiter
// paces frames, the ranker's outstanding accounting moves by n (PickBatch) —
// and coalesced into one MsgBatchReadInternal/MsgBatchWriteInternal frame to
// the chosen replica: one pooled call record, one enqueue, one flush
// opportunity. Sub-batches scatter concurrently; the gather assembles per-key
// results in client order.
//
// Stragglers reuse the PR 3 escalation ladder per sub-batch: an adaptive
// hedge to the next-ranked untried replica after srtt+3.5·rttvar, immediate
// ranked failover on RPC failure, and the configured ReadBudget backstopping
// the whole sub-batch. Accounting preserves the zero-residual invariant with
// batch weights: every PickBatch/PickHedgeN/PickNextN of n keys is balanced
// by exactly one OnResponseN (real feedback or the failure penalty, weight n)
// or OnAbandonN (own shutdown).

// subBatch is one replica group's slice of a client batch: the keys bound for
// that group, their positions in the client batch, and — once the scatter
// resolves — the per-key results. Reads fill found/offs/vbuf; writes fill
// oks.
type subBatch struct {
	group []core.ServerID
	keys  []string
	pos   []int

	// Read results: key j's value is (*vbuf)[offs[j]:offs[j+1]] when
	// found[j]. A nil found means the sub-batch failed wholesale (every
	// replica down or budget exhausted): every key reports not-found.
	found []bool
	offs  []int
	vbuf  *[]byte

	// Write-only state: the sub-batch's values (aliasing the batch's value
	// arena) and the per-key acks (≥1 replica applied the key).
	wvals [][]byte
	oks   []bool
}

// subRef locates one client-batch key inside the partition.
type subRef struct {
	sb *subBatch
	j  int
}

// partitionBatch splits keys by replica group of the topology's read ring,
// preserving client order within each sub-batch, and returns the per-key
// back-references for the gather.
func (n *Node) partitionBatch(t *topology, keys []string) ([]*subBatch, []subRef) {
	r := t.readRing()
	where := make([]subRef, len(keys))
	byGroup := make([]*subBatch, r.Nodes())
	subs := make([]*subBatch, 0, 4)
	for i, k := range keys {
		tok := ring.Token([]byte(k))
		gi := r.GroupIndexFor(tok)
		sb := byGroup[gi]
		if sb == nil {
			sb = &subBatch{group: r.ReplicasForToken(tok, nil)}
			byGroup[gi] = sb
			subs = append(subs, sb)
		}
		sb.keys = append(sb.keys, k)
		sb.pos = append(sb.pos, i)
		where[i] = subRef{sb, len(sb.keys) - 1}
	}
	return subs, where
}

// batchOutcome is one replica's resolution within a sub-batch's race.
type batchOutcome struct {
	from  core.ServerID
	found []bool
	offs  []int
	buf   *[]byte // pooled buffer backing the values; the consumer recycles it
	rtt   time.Duration
	err   error
}

// localBatchReadInto serves a sub-batch against the local store, packing
// values into buf with offsets — the coordinator-side result layout shared
// with remote sub-batch responses. Queue accounting and feedback weight are
// the batch size (beginBatchRead/finishBatchRead).
func (n *Node) localBatchReadInto(buf []byte, keys []string) ([]bool, []int, []byte, wire.Feedback) {
	start := n.beginBatchRead(len(keys))
	found := make([]bool, len(keys))
	offs := make([]int, len(keys)+1)
	for i, k := range keys {
		buf, found[i] = n.store.GetAppend(buf, k)
		offs[i+1] = len(buf)
	}
	return found, offs, buf, n.finishBatchRead(start, len(keys))
}

// accountBatchReadSuccess feeds a sub-batch's piggybacked feedback to the
// selector with weight nk — the single sample describes the post-batch server
// state, and the replica just shed nk outstanding reads.
func (n *Node) accountBatchReadSuccess(s core.ServerID, nk int, fb wire.Feedback, rtt time.Duration, now time.Time) {
	n.sel.OnResponseN(s, nk, core.Feedback{
		QueueSize:   fb.QueueSize,
		ServiceTime: time.Duration(fb.ServiceNs),
	}, rtt, now.UnixNano())
}

// accountBatchReadFailure records a failed sub-batch with the selector: our
// own shutdown abandons the nk keys, as does a failure toward a server the
// topology has retired (see accountReadFailure), while a real failure of a
// live member feeds the punishing penalty with batch weight.
func (n *Node) accountBatchReadFailure(s core.ServerID, nk int, now time.Time) {
	if n.isClosed() || !n.topo.Load().serves(s) {
		n.sel.OnAbandonN(s, nk, now.UnixNano())
	} else {
		n.sel.OnResponseN(s, nk, core.Feedback{QueueSize: failPenaltyQueue,
			ServiceTime: failPenaltyRTT}, failPenaltyRTT, now.UnixNano())
	}
}

// raceBatchRead fires one sub-batch read toward s — local or remote — as an
// independent racer reporting into ch. Like raceRead, the racer performs its
// own selector accounting as it resolves, so the OnSendN recorded at dispatch
// is balanced no matter whether the sub-batch ladder is still listening.
// ch must be buffered for the whole race so a late loser never blocks.
func (n *Node) raceBatchRead(s core.ServerID, keys []string, ch chan<- batchOutcome) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		nk := len(keys)
		rb := getBuf()
		sent := time.Now()
		if s == n.id {
			found, offs, buf, fb := n.localBatchReadInto((*rb)[:0], keys)
			*rb = buf
			now := time.Now()
			rtt := now.Sub(sent)
			n.accountBatchReadSuccess(s, nk, fb, rtt, now)
			ch <- batchOutcome{from: s, found: found, offs: offs, buf: rb, rtt: rtt}
			return
		}
		var ca *call
		p, err := n.peer(s)
		if err == nil {
			ca, err = p.batchRead(wire.MsgBatchReadInternal, keys, (*rb)[:0])
		}
		if err == nil && len(ca.bfound) != nk {
			putCall(ca)
			err = errMismatchedResp
		}
		now := time.Now()
		if err != nil {
			putBuf(rb)
			n.accountBatchReadFailure(s, nk, now)
			ch <- batchOutcome{from: s, err: err}
			return
		}
		*rb = ca.bbuf
		found := append(make([]bool, 0, nk), ca.bfound...)
		offs := append(make([]int, 0, nk+1), ca.boffs...)
		fb := ca.bfb
		putCall(ca)
		rtt := now.Sub(sent)
		n.accountBatchReadSuccess(s, nk, fb, rtt, now)
		ch <- batchOutcome{from: s, found: found, offs: offs, buf: rb, rtt: rtt}
	}()
}

// reapBatch drains the remaining racers of a resolved sub-batch in the
// background, recycling their value buffers (their selector accounting
// happens inside raceBatchRead).
func (n *Node) reapBatch(ch <-chan batchOutcome, pending int) {
	if pending <= 0 {
		return
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for i := 0; i < pending; i++ {
			putBuf((<-ch).buf)
		}
	}()
}

// maybeBatchReadRepair is the batch counterpart of maybeReadRepair: with the
// configured probability, the sub-batch is also read at every unselected
// replica of its group, keeping the coordinator's feedback for replicas it
// has stopped selecting fresh even under batch-only workloads. Probe
// accounting carries batch weights and pairs every OnSendN with exactly one
// OnResponseN (success) or OnAbandonN (failure — a probe is best-effort and
// must not poison the estimators or leak outstanding counts).
func (n *Node) maybeBatchReadRepair(keys []string, group []core.ServerID, target core.ServerID) {
	if n.cfg.ReadRepair <= 0 {
		return
	}
	n.rngMu.Lock()
	repair := n.rng.Float64() < n.cfg.ReadRepair
	n.rngMu.Unlock()
	if !repair {
		return
	}
	nk := len(keys)
	for _, s := range group {
		if s == target || s == n.id {
			continue
		}
		s := s
		n.sel.OnSendN(s, nk, time.Now().UnixNano())
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			rb := getBuf()
			sent := time.Now()
			var ca *call
			p, err := n.peer(s)
			if err == nil {
				ca, err = p.batchRead(wire.MsgBatchReadInternal, keys, (*rb)[:0])
			}
			if err == nil {
				*rb = ca.bbuf
				fb := ca.bfb
				putCall(ca)
				n.accountBatchReadSuccess(s, nk, fb, time.Since(sent), time.Now())
			} else {
				n.sel.OnAbandonN(s, nk, time.Now().UnixNano())
			}
			putBuf(rb)
		}()
	}
}

// runSubBatch executes one sub-batch's read ladder: backpressure-admitted
// ranked dispatch, adaptive hedge, ranked failover, read budget. On success
// the results land in sb; on wholesale failure sb.found stays nil and every
// key reports not-found.
func (n *Node) runSubBatch(sb *subBatch) {
	nk := len(sb.keys)
	deadline := time.Now().Add(n.cfg.BackpressureTimeout)
	var target core.ServerID
	waited := false
	for {
		now := time.Now().UnixNano()
		s, ok, retryAt := n.sel.PickBatch(sb.group, nk, now)
		if ok {
			target = s
			break
		}
		waited = true
		if time.Now().After(deadline) {
			// Fail open like the point path: ranked best, no token.
			target, _ = n.sel.PickBestN(sb.group, nk, now)
			break
		}
		time.Sleep(time.Duration(retryAt-now) + 100*time.Microsecond)
	}
	if waited {
		n.waited.Add(1)
	}
	n.maybeBatchReadRepair(sb.keys, sb.group, target)

	// Inline local fast path: an in-memory sub-batch with no configured delay
	// has nothing a hedge could rescue; serve it on this goroutine.
	if target == n.id && n.inlineLocalReads() {
		rb := getBuf()
		sent := time.Now()
		found, offs, buf, fb := n.localBatchReadInto((*rb)[:0], sb.keys)
		*rb = buf
		now := time.Now()
		n.accountBatchReadSuccess(target, nk, fb, now.Sub(sent), now)
		sb.found, sb.offs, sb.vbuf = found, offs, rb
		return
	}

	var triedBuf [8]core.ServerID
	tried := append(triedBuf[:0], target)
	ch := make(chan batchOutcome, len(sb.group))
	n.raceBatchRead(target, sb.keys, ch)
	pending := 1
	hedged := core.ServerID(-1)

	budget := getTimer(n.cfg.ReadBudget)
	defer putTimer(budget)
	var hedgeC <-chan time.Time
	if !n.cfg.Hedge.Disabled && len(sb.group) > 1 {
		ht := getTimer(n.hedgeDelay())
		defer putTimer(ht)
		hedgeC = ht.C
	}
	for {
		select {
		case out := <-ch:
			pending--
			if out.err == nil {
				if out.from == hedged {
					n.hedgeWins.Add(1)
				}
				n.observeReadRTT(out.rtt)
				sb.found, sb.offs, sb.vbuf = out.found, out.offs, out.buf
				n.reapBatch(ch, pending)
				return
			}
			// Ranked failover: replace the dead sub-batch dispatch with the
			// next-best untried replica (no hedge count — it duplicates
			// nothing).
			if s, ok := n.sel.PickNextN(sb.group, tried, nk, time.Now().UnixNano()); ok {
				tried = append(tried, s)
				n.raceBatchRead(s, sb.keys, ch)
				pending++
			} else if pending == 0 {
				return // every replica failed
			}
		case <-hedgeC:
			hedgeC = nil
			if s, ok := n.sel.PickHedgeN(sb.group, tried, nk, time.Now().UnixNano()); ok {
				hedged = s
				tried = append(tried, s)
				n.raceBatchRead(s, sb.keys, ch)
				pending++
			}
		case <-budget.C:
			// Budget exhausted: the sub-batch reports not-found. In-flight
			// racers account for themselves and are reaped in the background.
			n.reapBatch(ch, pending)
			return
		}
	}
}

// coordinateBatchRead is the scatter half of a client batch read: partition
// by replica group, run every sub-batch's ladder concurrently, and return the
// partition for the gather. Each key of the batch counts as one coordinated
// read.
func (n *Node) coordinateBatchRead(keys []string) ([]*subBatch, []subRef) {
	n.coord.Add(uint64(len(keys)))
	subs, where := n.partitionBatch(n.topo.Load(), keys)
	if len(subs) == 1 {
		n.runSubBatch(subs[0])
		return subs, where
	}
	var wg sync.WaitGroup
	for _, sb := range subs {
		sb := sb
		wg.Add(1)
		n.wg.Add(1)
		go func() {
			defer wg.Done()
			defer n.wg.Done()
			n.runSubBatch(sb)
		}()
	}
	wg.Wait()
	return subs, where
}

// respondCoordBatchRead coordinates a client batch read and enqueues the
// response: scatter, gather, then stream every found value from the
// sub-batch result buffers into the response frame in client key order.
func (n *Node) respondCoordBatchRead(cw *connWriter, id uint64, keys []string) {
	subs, where := n.coordinateBatchRead(keys)
	fb := getBuf()
	b, mark := wire.BeginBatchReadResp((*fb)[:0], id)
	var err error
	for i := range keys {
		ref := where[i]
		b = wire.BeginBatchReadItem(b, &mark)
		ok := false
		if sb := ref.sb; sb.found != nil && sb.found[ref.j] {
			ok = true
			b = append(b, (*sb.vbuf)[sb.offs[ref.j]:sb.offs[ref.j+1]]...)
		}
		if b, err = wire.FinishBatchReadItem(b, &mark, ok); err != nil {
			break
		}
	}
	if err == nil {
		b, err = wire.FinishBatchReadResp(b, mark, n.feedback())
	}
	for _, sb := range subs {
		putBuf(sb.vbuf)
	}
	if err != nil {
		// The gathered response cannot be framed (total values overflow
		// MaxFrame — reachable, unlike the point path, because MaxBatchKeys
		// × MaxValueLen exceeds it): sever so the client's call fails fast
		// instead of waiting forever on a silently dropped response.
		putBuf(fb)
		cw.sever(err)
		return
	}
	*fb = b
	cw.enqueue(fb)
}

// runWriteSub fans one write sub-batch to every replica of its group
// (CL=ONE per key): a replica that acks every key acks the sub-batch
// immediately, otherwise per-key acks accumulate until all replicas resolve.
// release is the value-arena refcount, called once per replica attempt after
// its encode/apply no longer needs the values.
func (n *Node) runWriteSub(sb *subBatch, release func()) {
	nk := len(sb.keys)
	acks := make(chan []bool, len(sb.group))
	for _, s := range sb.group {
		s := s
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer release()
			if s == n.id {
				if err := n.store.PutAll(sb.keys, sb.wvals); err != nil {
					acks <- nil
					return
				}
				acks <- allOK[:nk]
				return
			}
			p, err := n.peer(s)
			if err != nil {
				acks <- nil
				return
			}
			oks, _, err := p.batchWrite(wire.MsgBatchWriteInternal, sb.keys, sb.wvals, nil)
			if err != nil || len(oks) != nk {
				acks <- nil
				return
			}
			acks <- oks
		}()
	}
	sb.oks = make([]bool, nk)
	for resolved := 0; resolved < len(sb.group); resolved++ {
		oks := <-acks
		if oks == nil {
			continue
		}
		all := true
		for i, ok := range oks {
			if ok {
				sb.oks[i] = true
			} else {
				all = false
			}
		}
		if all {
			return // CL=ONE satisfied for every key; stragglers drain via the buffered channel
		}
	}
}

// respondCoordBatchWrite coordinates a client batch write and enqueues the
// per-key acks. arena is the pooled buffer backing vals, recycled once every
// replica attempt of every sub-batch is done with the values.
func (n *Node) respondCoordBatchWrite(cw *connWriter, id uint64, keys []string, vals [][]byte, arena *[]byte) {
	t := n.topo.Load()
	subs, where := n.partitionBatch(t, keys)
	if t.prev != nil {
		// Dual-route window: extend each sub-batch's write fan to the union
		// of old and new owners of its keys, mirroring coordinateWrite.
		for _, sb := range subs {
			for _, k := range sb.keys {
				for _, s := range t.v.Ring().ReplicasFor([]byte(k), nil) {
					if !slices.Contains(sb.group, s) {
						sb.group = append(sb.group, s)
					}
				}
			}
		}
	}
	total := 0
	for _, sb := range subs {
		sb.wvals = make([][]byte, len(sb.keys))
		for j, p := range sb.pos {
			sb.wvals[j] = vals[p]
		}
		total += len(sb.group)
	}
	remaining := new(atomic.Int32)
	remaining.Store(int32(total))
	release := func() {
		if remaining.Add(-1) == 0 {
			putBuf(arena)
		}
	}
	if len(subs) == 1 {
		n.runWriteSub(subs[0], release)
	} else {
		var wg sync.WaitGroup
		for _, sb := range subs {
			sb := sb
			wg.Add(1)
			n.wg.Add(1)
			go func() {
				defer wg.Done()
				defer n.wg.Done()
				n.runWriteSub(sb, release)
			}()
		}
		wg.Wait()
	}
	oks := make([]bool, len(keys))
	for i := range keys {
		ref := where[i]
		oks[i] = ref.sb.oks[ref.j]
		if !oks[i] {
			n.writeFails.Add(1)
		}
	}
	fb := getBuf()
	b, err := wire.AppendBatchWriteResp((*fb)[:0], wire.BatchWriteResp{
		ID: id, OK: oks, FB: n.feedback()})
	if err != nil {
		putBuf(fb)
		cw.sever(err)
		return
	}
	*fb = b
	cw.enqueue(fb)
}
