package lockscope_test

import (
	"testing"

	"c3/internal/analysis/analysistest"
	"c3/internal/analysis/lockscope"
)

func TestLockScope(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockscope.Analyzer, "lockscope")
}
