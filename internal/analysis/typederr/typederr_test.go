package typederr_test

import (
	"testing"

	"c3/internal/analysis/analysistest"
	"c3/internal/analysis/typederr"
)

func TestTypedErr(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), typederr.Analyzer, "typederr")
}
