package queuesim

import (
	"testing"
)

// small returns a fast configuration for unit tests: the same topology at a
// reduced request count.
func small(policy string, seed uint64) Config {
	cfg := DefaultConfig()
	cfg.Policy = policy
	cfg.Requests = 20_000
	cfg.Seed = seed
	return cfg
}

func TestAllRequestsComplete(t *testing.T) {
	for _, p := range Policies() {
		p := p
		t.Run(p, func(t *testing.T) {
			t.Parallel()
			cfg := small(p, 1)
			cfg.Requests = 5_000
			res := Run(cfg)
			if res.Sample.Count() != cfg.Requests {
				t.Fatalf("completed %d requests, want %d", res.Sample.Count(), cfg.Requests)
			}
			if res.Latency.Min <= 0 {
				t.Fatalf("non-positive latency %v", res.Latency.Min)
			}
			total := 0
			for _, n := range res.PerServer {
				total += n
			}
			if total != cfg.Requests {
				t.Fatalf("per-server counts sum to %d, want %d", total, cfg.Requests)
			}
		})
	}
}

func TestLatencyIncludesNetworkFloor(t *testing.T) {
	res := Run(small(PolicyLOR, 2))
	// Floor: 2×250µs network + ~>0 service. Anything below 0.5 ms is a
	// model bug.
	if res.Latency.Min < 0.5 {
		t.Fatalf("min latency %v ms below network floor", res.Latency.Min)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	a := Run(small(PolicyC3, 42))
	b := Run(small(PolicyC3, 42))
	if a.Latency.Mean != b.Latency.Mean || a.Latency.P999 != b.Latency.P999 ||
		a.Throughput != b.Throughput {
		t.Fatalf("same seed diverged: %+v vs %+v", a.Latency, b.Latency)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := Run(small(PolicyC3, 1))
	b := Run(small(PolicyC3, 2))
	if a.Latency.Mean == b.Latency.Mean && a.Latency.P99 == b.Latency.P99 {
		t.Fatal("different seeds produced identical results (suspicious)")
	}
}

func TestThroughputMatchesOfferedLoad(t *testing.T) {
	cfg := small(PolicyLOR, 3)
	cfg.Requests = 100_000
	res := Run(cfg)
	// Offered rate: 0.7 × 50 × 4 × (250+750)/2 / 1.2 (read-repair
	// discount) ≈ 58,333/s. The drain tail after the last arrival pulls
	// the measured figure somewhat below the offered rate.
	want := 58333.0
	if res.Throughput < want*0.8 || res.Throughput > want*1.05 {
		t.Fatalf("throughput = %.0f/s, want ≈%.0f/s", res.Throughput, want)
	}
}

func TestUtilizationKnob(t *testing.T) {
	lo := small(PolicyLOR, 4)
	lo.Utilization = 0.45
	hi := small(PolicyLOR, 4)
	hi.Utilization = 0.70
	rl, rh := Run(lo), Run(hi)
	if rl.Throughput >= rh.Throughput {
		t.Fatalf("throughput should scale with utilization: %.0f vs %.0f",
			rl.Throughput, rh.Throughput)
	}
	if rl.Latency.P99 >= rh.Latency.P99 {
		t.Fatalf("tail should grow with utilization: %.2f vs %.2f",
			rl.Latency.P99, rh.Latency.P99)
	}
}

func TestC3BeatsLORUnderSlowFluctuations(t *testing.T) {
	// The paper's central §6 result (Fig. 14): with slowly-varying service
	// rates, LOR keeps feeding slow servers while C3 compensates; C3's
	// 99th percentile must be clearly lower. Averaged over 3 seeds to
	// avoid flaky single-run comparisons.
	var c3, lor float64
	for seed := uint64(0); seed < 3; seed++ {
		cc := small(PolicyC3, seed)
		cc.Fluctuation = 500 * 1e6
		cc.Requests = 40_000
		lc := small(PolicyLOR, seed)
		lc.Fluctuation = 500 * 1e6
		lc.Requests = 40_000
		c3 += Run(cc).Latency.P99
		lor += Run(lc).Latency.P99
	}
	if c3 >= lor {
		t.Fatalf("C3 p99 (%.2f ms avg) should beat LOR (%.2f ms avg) at T=500ms", c3/3, lor/3)
	}
}

func TestOracleIsCompetitive(t *testing.T) {
	// ORA has perfect knowledge; it should not lose badly to LOR.
	var ora, lor float64
	for seed := uint64(0); seed < 3; seed++ {
		ora += Run(small(PolicyOracle, seed)).Latency.P99
		lor += Run(small(PolicyLOR, seed)).Latency.P99
	}
	if ora > lor*1.5 {
		t.Fatalf("oracle p99 (%.2f) much worse than LOR (%.2f): oracle wiring broken", ora/3, lor/3)
	}
}

func TestReadRepairAddsLoad(t *testing.T) {
	base := small(PolicyLOR, 5)
	base.ReadRepair = 0
	rep := small(PolicyLOR, 5)
	rep.ReadRepair = 0.5
	rb, rr := Run(base), Run(rep)
	// 50% repair over RF=3 → ~2× request copies → markedly higher wait.
	if rr.Latency.Mean <= rb.Latency.Mean {
		t.Fatalf("read repair should increase load: mean %.2f vs %.2f",
			rr.Latency.Mean, rb.Latency.Mean)
	}
}

func TestDemandSkewRuns(t *testing.T) {
	cfg := small(PolicyC3, 6)
	cfg.SkewFraction = 0.2
	res := Run(cfg)
	if res.Sample.Count() != cfg.Requests {
		t.Fatalf("skewed run incomplete: %d", res.Sample.Count())
	}
}

func TestBackpressureObservedUnderRateControl(t *testing.T) {
	cfg := small(PolicyC3, 7)
	// Tiny initial rate forces backlog queueing immediately.
	cfg.RateConfig.InitialRate = 0.6
	cfg.RateConfig.MaxRate = 2
	cfg.Requests = 3_000
	res := Run(cfg)
	if res.Backpressured == 0 {
		t.Fatal("expected backpressure events with a tiny send rate")
	}
	if res.MaxBacklog == 0 {
		t.Fatal("expected a nonzero backlog high-water mark")
	}
	if res.Sample.Count() != cfg.Requests {
		t.Fatalf("requests lost under backpressure: %d/%d", res.Sample.Count(), cfg.Requests)
	}
}

func TestUnknownPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown policy did not panic")
		}
	}()
	Run(Config{Policy: "NOPE", Requests: 10})
}

func TestExponentAblationKnob(t *testing.T) {
	cfg := small(PolicyC3, 8)
	cfg.Requests = 5_000
	cfg.Exponent = 1
	r1 := Run(cfg)
	cfg.Exponent = 3
	r3 := Run(cfg)
	if r1.Sample.Count() != 5000 || r3.Sample.Count() != 5000 {
		t.Fatal("ablation runs incomplete")
	}
	if r1.Latency.Mean == r3.Latency.Mean {
		t.Fatal("exponent knob has no effect (suspicious)")
	}
}

func TestNoConcurrencyCompKnob(t *testing.T) {
	cfg := small(PolicyC3, 9)
	cfg.Requests = 5_000
	cfg.NoConcurrencyComp = true
	res := Run(cfg)
	if res.Sample.Count() != 5000 {
		t.Fatal("no-concurrency-comp run incomplete")
	}
}

func TestFluctuationIntervalMatters(t *testing.T) {
	// LOR at very fast fluctuation (10 ms) vs slow (500 ms): the paper
	// shows degradation grows with the interval at low utilization.
	fast := small(PolicyLOR, 10)
	fast.Fluctuation = 10 * 1e6
	fast.Utilization = 0.45
	fast.Requests = 40_000
	slow := small(PolicyLOR, 10)
	slow.Fluctuation = 500 * 1e6
	slow.Utilization = 0.45
	slow.Requests = 40_000
	rf, rs := Run(fast), Run(slow)
	if rf.Sample.Count() != rs.Sample.Count() {
		t.Fatal("runs incomplete")
	}
	// Weak-form assertion: both complete and produce sane tails.
	if rf.Latency.P99 <= 0 || rs.Latency.P99 <= 0 {
		t.Fatal("degenerate tails")
	}
}

func BenchmarkRunC3Small(b *testing.B) {
	cfg := small(PolicyC3, 1)
	cfg.Requests = 5_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		Run(cfg)
	}
}
