// Fixture shapes are distilled from internal/kvstore/rpc.go and batch.go:
// the readLoop dst-copy discipline, MultiGet chunk slicing, and the
// read-repair goroutines that must not capture frame memory.
package aliasretain

import "wire"

type cache struct {
	last []byte
	key  string
}

var global []byte

func handle(v []byte) {}

// heapStore publishes the frame-aliasing payload through a pointer: the
// PR 8 readLoop bug shape (c.read = m before the dst copy).
func heapStore(c *cache, b []byte) {
	resp, _ := wire.ParseReadResp(b)
	c.last = resp.Value // want `storing frame-aliasing wire data`
}

// heapStoreCopied launders through append first — the contract's idiom.
func heapStoreCopied(c *cache, b []byte) {
	resp, _ := wire.ParseReadResp(b)
	c.last = append(c.last[:0], resp.Value...)
}

// stringField: string fields of Parse results alias the frame too.
func stringField(c *cache, b []byte) {
	req, _ := wire.ParseWriteReq(b)
	c.key = req.Key // want `storing frame-aliasing wire data`
}

// stringFieldCopied: a string<->[]byte conversion is a real copy.
func stringFieldCopied(c *cache, b []byte) {
	req, _ := wire.ParseWriteReq(b)
	c.key = string([]byte(req.Key))
}

// localOK: same-frame use of the alias is the whole point of zero-copy.
func localOK(b []byte) int {
	resp, _ := wire.ParseReadResp(b)
	v := resp.Value
	v = v[1:]
	return len(v)
}

// killThenStore: overwriting the local with a copy clears its taint.
func killThenStore(c *cache, b []byte) {
	resp, _ := wire.ParseReadResp(b)
	v := resp.Value
	v = append([]byte(nil), v...)
	c.last = v
}

func channelSend(ch chan []byte, b []byte) {
	resp, _ := wire.ParseReadResp(b)
	ch <- resp.Value // want `sending frame-aliasing wire data`
}

func channelSendCopied(ch chan []byte, b []byte) {
	resp, _ := wire.ParseReadResp(b)
	ch <- append([]byte(nil), resp.Value...)
}

// goArg: the goroutine outlives the frame the argument points into.
func goArg(b []byte) {
	resp, _ := wire.ParseReadResp(b)
	go handle(resp.Value) // want `passing frame-aliasing wire data to a goroutine`
}

// goCapture: capturing the tainted local is the same escape by closure.
func goCapture(b []byte) {
	resp, _ := wire.ParseReadResp(b)
	go func() {
		handle(resp.Value) // want `goroutine captures resp`
	}()
}

func goCopiedFirst(b []byte) {
	resp, _ := wire.ParseReadResp(b)
	v := append([]byte(nil), resp.Value...)
	go func() {
		handle(v)
	}()
}

// nextStore: Reader.Next payloads are the frame itself.
func nextStore(r *wire.Reader) {
	_, payload, _ := r.Next()
	global = payload // want `storing frame-aliasing wire data`
}

func mapStore(m map[string][]byte, b []byte) {
	resp, _ := wire.ParseReadResp(b)
	m["k"] = resp.Value // want `storing frame-aliasing wire data`
}

// rangeChunk: iterating a [][]byte field hands out per-element aliases.
func rangeChunk(c *cache, b []byte) {
	chunk, _ := wire.ParseStreamChunk(b)
	for _, v := range chunk.Values {
		c.last = v // want `storing frame-aliasing wire data`
	}
}

// retainUntilReply holds the alias deliberately: the caller guarantees no
// intervening Next until the reply is flushed, so the store is suppressed.
func retainUntilReply(c *cache, b []byte) {
	resp, _ := wire.ParseReadResp(b)
	//lint:allow aliasretain reply is flushed before the next frame read reuses the buffer
	c.last = resp.Value
}
