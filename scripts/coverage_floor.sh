#!/usr/bin/env bash
# Coverage floors for the packages the membership, durability, and
# consistency work leans on. The floors are a few points below the measured
# coverage at the time they were checked in (ring 91.9%, wire 94.3%,
# kvstore 86.2%, lsm 78.4% — re-measured with the tunable-consistency,
# hinted-handoff, and versioned-value suites; analysis tree 79.9% measured
# across the analyzer fixture suites with -coverpkg), so the ring-invariant,
# wire-fuzz, membership-chaos, crash-recovery, consistency-chaos, and
# analyzer fixture suites cannot silently rot without CI noticing. Raise a
# floor when coverage durably improves; never lower one to make a red build
# green without understanding what stopped being tested.
set -euo pipefail

declare -A FLOORS=(
  [internal/ring]=87
  [internal/wire]=89
  [internal/kvstore]=80
  [internal/lsm]=74
  # The gateway and ops surface (resp 85.1%, obs 94.1% measured when the
  # floors were checked in): the RESP protocol tests, fuzz corpus replay,
  # and handler endpoint tests cannot silently rot.
  [internal/resp]=80
  [internal/obs]=88
  # The c3vet framework and analyzers: a "..." entry measures the whole
  # subtree with -coverpkg, so the analysistest fixture suites count toward
  # the shared cfg/suppression machinery they exercise.
  [internal/analysis/...]=75
)

fail=0
for pkg in "${!FLOORS[@]}"; do
  floor=${FLOORS[$pkg]}
  profile=$(mktemp)
  extra=()
  if [[ "$pkg" == *...* ]]; then
    extra=(-coverpkg="./$pkg")
  fi
  go test "${extra[@]}" -coverprofile="$profile" "./$pkg" >/dev/null
  total=$(go tool cover -func="$profile" | awk '/^total:/ {gsub(/%/, "", $3); print $3}')
  rm -f "$profile"
  ok=$(awk -v t="$total" -v f="$floor" 'BEGIN {print (t >= f) ? 1 : 0}')
  if [[ "$ok" == 1 ]]; then
    echo "coverage OK   $pkg: ${total}% (floor ${floor}%)"
  else
    echo "coverage FAIL $pkg: ${total}% below floor ${floor}%"
    fail=1
  fi
done
exit $fail
