package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"c3/internal/kvstore"
	"c3/internal/obs"
	"c3/internal/resp"
)

// attachFrontends puts a RESP gateway and/or an ops HTTP endpoint in front of
// every node: node i listens on respBase+i / obsBase+i (0 disables either).
// Returns a closer that tears the listeners down.
func attachFrontends(cl *kvstore.Cluster, respBase, obsBase int, lvl kvstore.Level) (func(), error) {
	var closers []func()
	closeAll := func() {
		for _, c := range closers {
			c()
		}
	}
	for i, node := range cl.Nodes {
		if node == nil {
			continue
		}
		if respBase > 0 {
			ln, err := net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", respBase+i))
			if err != nil {
				closeAll()
				return nil, fmt.Errorf("resp listener for node %d: %w", i, err)
			}
			srv := resp.NewServer(node.RESPBackend(lvl))
			go srv.Serve(ln)
			closers = append(closers, srv.Close)
			fmt.Printf("node %d: RESP on %s\n", i, ln.Addr())
		}
		if obsBase > 0 {
			ln, err := net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", obsBase+i))
			if err != nil {
				closeAll()
				return nil, fmt.Errorf("ops listener for node %d: %w", i, err)
			}
			n := node
			go obs.Serve(ln, obs.Handler(func() any { return n.StatsSnapshot() }))
			closers = append(closers, func() { ln.Close() })
			fmt.Printf("node %d: ops HTTP on http://%s (/stats, /debug/vars, /debug/pprof)\n", i, ln.Addr())
		}
	}
	return closeAll, nil
}

// runServe boots a cluster and serves the gateway/ops frontends until
// SIGINT/SIGTERM — the mode CI's gateway smoke and redis-benchmark drive.
func runServe(nodes int, strategy, dataDir string, lvl kvstore.Level, shards, respBase, obsBase int) {
	if respBase == 0 && obsBase == 0 {
		fmt.Fprintln(os.Stderr, "-serve needs -resp and/or -obs to expose something")
		os.Exit(2)
	}
	fmt.Printf("booting %d-node TCP cluster on loopback (strategy %s, consistency %s)...\n",
		nodes, strategy, lvl)
	cl, err := kvstore.StartCluster(nodes, kvstore.Config{
		Strategy: strategy,
		Seed:     1,
		DataDir:  dataDir,
		Shards:   shards,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer cl.Close()
	closeFronts, err := attachFrontends(cl, respBase, obsBase, lvl)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer closeFronts()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	fmt.Println("serving; Ctrl-C to stop")
	<-sig
	fmt.Println("shutting down")
}

// cmdStats fetches a node's /stats endpoint and renders it. With -watch it
// polls until interrupted.
func cmdStats(argv []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	watch := fs.Duration("watch", 0, "poll interval (0 = fetch once)")
	raw := fs.Bool("json", false, "print the raw JSON instead of the rendered view")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: c3cluster stats [-watch 1s] [-json] host:port")
		fs.PrintDefaults()
	}
	fs.Parse(argv)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	addr := fs.Arg(0)
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	fetch := func() error {
		resp, err := http.Get(addr + "/stats")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: %s", resp.Status, body)
		}
		if *raw {
			os.Stdout.Write(body)
			return nil
		}
		var st kvstore.NodeStats
		if err := json.Unmarshal(body, &st); err != nil {
			return fmt.Errorf("decode /stats: %w", err)
		}
		fmt.Print(st.InfoText())
		return nil
	}
	for {
		if err := fetch(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *watch <= 0 {
			return
		}
		time.Sleep(*watch)
		fmt.Println("---")
	}
}

// cmdProbe drives a short correctness workload through a RESP gateway — the
// minimal client CI's smoke step uses in place of redis-benchmark. Exits
// non-zero on the first wrong answer.
func cmdProbe(argv []string) {
	fs := flag.NewFlagSet("probe", flag.ExitOnError)
	ops := fs.Int("ops", 200, "SET+GET pairs to run after the correctness checks")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: c3cluster probe [-ops 200] host:port")
		fs.PrintDefaults()
	}
	fs.Parse(argv)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	c, err := resp.DialClient(fs.Arg(0), 5*time.Second)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dial:", err)
		os.Exit(1)
	}
	defer c.Close()

	die := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "probe: "+format+"\n", args...)
		os.Exit(1)
	}
	do := func(args ...string) resp.Reply {
		r, err := c.Do(args...)
		if err != nil {
			die("%v: %v", args, err)
		}
		if e := r.Err(); e != nil {
			die("%v: %v", args, e)
		}
		return r
	}

	if r := do("PING"); r.Str != "PONG" {
		die("PING = %+v", r)
	}
	if r := do("SET", "probe:k", "v1"); r.Str != "OK" {
		die("SET = %+v", r)
	}
	if r := do("GET", "probe:k"); r.IsNil || r.Str != "v1" {
		die("GET = %+v, want v1", r)
	}
	if r := do("GET", "probe:missing"); !r.IsNil {
		die("GET missing = %+v, want nil", r)
	}
	do("SET", "probe:empty", "")
	if r := do("GET", "probe:empty"); r.IsNil || r.Str != "" {
		die("GET empty = %+v, want zero-length bulk", r)
	}
	if r := do("DEL", "probe:k", "probe:missing"); r.Int != 1 {
		die("DEL = %+v, want 1", r)
	}
	if r := do("GET", "probe:k"); !r.IsNil {
		die("GET after DEL = %+v, want nil", r)
	}
	do("MSET", "probe:a", "1", "probe:b", "2")
	r := do("MGET", "probe:a", "probe:gone", "probe:b")
	if len(r.Elems) != 3 || r.Elems[0].Str != "1" || !r.Elems[1].IsNil || r.Elems[2].Str != "2" {
		die("MGET = %+v", r.Elems)
	}
	for i := 0; i < *ops; i++ {
		k := fmt.Sprintf("probe:op%d", i)
		do("SET", k, "x")
		if r := do("GET", k); r.Str != "x" {
			die("GET %s = %+v", k, r)
		}
	}
	fmt.Printf("probe ok: correctness checks + %d SET/GET pairs, 0 errors\n", *ops)
}
