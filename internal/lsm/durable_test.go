package lsm

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"c3/internal/sim"
)

func mustOpen(tb testing.TB, opts Options) *Store {
	tb.Helper()
	s, err := Open(opts)
	if err != nil {
		tb.Fatalf("Open: %v", err)
	}
	return s
}

func mustPut(tb testing.TB, s *Store, key, val string) {
	tb.Helper()
	if err := s.Put(key, []byte(val)); err != nil {
		tb.Fatalf("Put(%s): %v", key, err)
	}
}

func mustDelete(tb testing.TB, s *Store, key string) {
	tb.Helper()
	if err := s.Delete(key); err != nil {
		tb.Fatalf("Delete(%s): %v", key, err)
	}
}

// wantGet asserts the visible state of key: want == "" means absent.
func wantGet(tb testing.TB, s *Store, key, want string) {
	tb.Helper()
	v, ok := s.Get(key)
	if want == "" {
		if ok {
			tb.Fatalf("Get(%s) = %q, want absent", key, v)
		}
		return
	}
	if !ok || string(v) != want {
		tb.Fatalf("Get(%s) = %q,%v, want %q", key, v, ok, want)
	}
}

func TestDurableRestartRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	for i := 0; i < 50; i++ {
		mustPut(t, s, fmt.Sprintf("sst-%02d", i), fmt.Sprintf("v%d", i))
	}
	s.Flush() // half the data via SSTs...
	for i := 0; i < 50; i++ {
		mustPut(t, s, fmt.Sprintf("wal-%02d", i), fmt.Sprintf("w%d", i))
	}
	mustPut(t, s, "sst-00", "overwritten") // ...and a WAL overwrite of an SST key
	mustPut(t, s, "empty", "")
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Put("late", []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}

	s = mustOpen(t, Options{Dir: dir})
	defer s.Close()
	wantGet(t, s, "sst-00", "overwritten")
	for i := 1; i < 50; i++ {
		wantGet(t, s, fmt.Sprintf("sst-%02d", i), fmt.Sprintf("v%d", i))
	}
	for i := 0; i < 50; i++ {
		wantGet(t, s, fmt.Sprintf("wal-%02d", i), fmt.Sprintf("w%d", i))
	}
	if v, ok := s.Get("empty"); !ok || len(v) != 0 {
		t.Fatalf("empty value lost: %q,%v", v, ok)
	}
}

// Periodic sync acks after write(2): an in-process Crash (which closes the
// files but cannot touch the page cache, like SIGKILL) must still lose
// nothing acked, and the background loop must be issuing real fsyncs.
func TestPeriodicSyncSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, SyncInterval: time.Millisecond})
	for i := 0; i < 100; i++ {
		mustPut(t, s, fmt.Sprintf("p%03d", i), "v")
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().GroupCommits == 0 {
		if time.Now().After(deadline) {
			t.Fatal("periodic sync loop never fsynced")
		}
		time.Sleep(time.Millisecond)
	}
	s.Crash()
	s2 := mustOpen(t, Options{Dir: dir, SyncInterval: time.Millisecond})
	defer s2.Close()
	for i := 0; i < 100; i++ {
		wantGet(t, s2, fmt.Sprintf("p%03d", i), "v")
	}
}

func TestCrashLosesNothingAcked(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, FlushBytes: 1 << 10})
	for i := 0; i < 200; i++ { // small FlushBytes: several flushes land mid-stream
		mustPut(t, s, fmt.Sprintf("k-%03d", i), fmt.Sprintf("v%d", i))
	}
	s.Crash()
	if err := s.Put("post", []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Crash = %v, want ErrClosed", err)
	}

	s = mustOpen(t, Options{Dir: dir})
	defer s.Close()
	for i := 0; i < 200; i++ {
		wantGet(t, s, fmt.Sprintf("k-%03d", i), fmt.Sprintf("v%d", i))
	}
}

// Tombstone durability: a delete acked only into the WAL at crash time must
// survive restart, and must not resurrect through flush or compaction after
// recovery.
func TestTombstoneSurvivesCrashAndCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	mustPut(t, s, "doomed", "v1")
	mustPut(t, s, "keeper", "v2")
	s.Flush() // both keys now live in an SST
	mustDelete(t, s, "doomed")
	s.Crash() // the tombstone exists only in the WAL

	s = mustOpen(t, Options{Dir: dir})
	wantGet(t, s, "doomed", "")
	wantGet(t, s, "keeper", "v2")
	s.Flush() // tombstone moves into an SST above the old value
	wantGet(t, s, "doomed", "")
	s.Compact()
	wantGet(t, s, "doomed", "")
	wantGet(t, s, "keeper", "v2")
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s = mustOpen(t, Options{Dir: dir})
	defer s.Close()
	wantGet(t, s, "doomed", "")
	wantGet(t, s, "keeper", "v2")
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

// A torn WAL tail (crash mid-append) is truncated on recovery; everything
// acked before it survives, and the log accepts appends afterwards.
func TestTornWALTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	mustPut(t, s, "a", "1")
	mustPut(t, s, "b", "2")
	s.Crash()

	// Simulate a torn append: garbage at the tail of the newest WAL.
	wals, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(wals) == 0 {
		t.Fatalf("no wal files: %v", err)
	}
	f, err := os.OpenFile(wals[len(wals)-1], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s = mustOpen(t, Options{Dir: dir})
	wantGet(t, s, "a", "1")
	wantGet(t, s, "b", "2")
	mustPut(t, s, "c", "3")
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s = mustOpen(t, Options{Dir: dir})
	defer s.Close()
	wantGet(t, s, "a", "1")
	wantGet(t, s, "b", "2")
	wantGet(t, s, "c", "3")
}

// Startup hygiene: Open removes temp files and SSTs/WALs the manifest does
// not reference.
func TestOpenRemovesOrphans(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	mustPut(t, s, "k", "v")
	s.Flush()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for _, orphan := range []string{"999999.sst", "999998.sst.tmp", "000001.wal", "MANIFEST.tmp"} {
		// 000001.wal sits below the post-flush watermark; the others are
		// never referenced at all.
		if err := os.WriteFile(filepath.Join(dir, orphan), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s = mustOpen(t, Options{Dir: dir})
	defer s.Close()
	wantGet(t, s, "k", "v")
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		n := ent.Name()
		if strings.HasSuffix(n, ".tmp") || n == "999999.sst" || n == "000001.wal" {
			t.Fatalf("orphan %s survived Open", n)
		}
	}
}

// copyDir snapshots src into a fresh directory — the moral equivalent of the
// disk image at a power cut, taken from inside a flush/compaction hook.
func copyDir(tb testing.TB, src string) string {
	tb.Helper()
	dst := tb.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		tb.Fatal(err)
	}
	for _, ent := range ents {
		data, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			tb.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), data, 0o644); err != nil {
			tb.Fatal(err)
		}
	}
	return dst
}

// Crash-point injection: capture the exact on-disk state between every pair
// of flush/compaction sub-steps (SST written, WAL rotated, manifest edited,
// inputs deleted) and prove each snapshot recovers with zero acked-write
// loss and no tombstone resurrection.
func TestCrashPointRecovery(t *testing.T) {
	points := []string{
		"flush.sst", "flush.rotate", "flush.manifest", "flush.done",
		"compact.sst", "compact.manifest", "compact.done",
	}
	for _, point := range points {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			var snap string
			opts := Options{Dir: dir, FlushBytes: 1 << 30, MaxRuns: 100}
			opts.hook = func(ev string) {
				if ev == point && snap == "" {
					snap = copyDir(t, dir)
				}
			}
			s := mustOpen(t, opts)
			// Build history: two flushed generations with an overwrite and a
			// flushed tombstone, then a WAL-only generation.
			mustPut(t, s, "stable", "s1")
			mustPut(t, s, "rewritten", "old")
			mustPut(t, s, "gone", "dead")
			s.Flush() // may trigger the snapshot for flush.* points
			mustPut(t, s, "rewritten", "new")
			mustDelete(t, s, "gone")
			s.Flush()
			mustPut(t, s, "walonly", "w1")
			s.Flush()
			s.Compact() // triggers the snapshot for compact.* points
			if snap == "" {
				t.Fatalf("hook %s never fired", point)
			}
			s.Crash()

			// Recover the snapshot. Every write acked before the captured
			// step must be visible; the deleted key must stay dead.
			r := mustOpen(t, Options{Dir: snap})
			defer r.Close()
			wantGet(t, r, "stable", "s1")
			if strings.HasPrefix(point, "compact.") {
				// All three generations were acked before compaction began.
				wantGet(t, r, "rewritten", "new")
				wantGet(t, r, "walonly", "w1")
				wantGet(t, r, "gone", "")
			} else {
				// The snapshot came from the first flush: only generation
				// one was acked by then.
				wantGet(t, r, "rewritten", "old")
				wantGet(t, r, "gone", "dead")
			}
			// Recovery must have cleaned every orphan the interrupted step
			// left behind.
			ents, err := os.ReadDir(snap)
			if err != nil {
				t.Fatal(err)
			}
			for _, ent := range ents {
				if strings.HasSuffix(ent.Name(), ".tmp") {
					t.Fatalf("orphan %s survived recovery", ent.Name())
				}
			}
		})
	}
}

// PutAll batches every record into one commit group: one fsync for the whole
// batch, not one per key.
func TestPutAllGroupCommits(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	defer s.Close()
	keys := make([]string, 100)
	vals := make([][]byte, 100)
	for i := range keys {
		keys[i] = fmt.Sprintf("b-%03d", i)
		vals[i] = []byte(fmt.Sprintf("v%d", i))
	}
	if err := s.PutAll(keys, vals); err != nil {
		t.Fatalf("PutAll: %v", err)
	}
	st := s.Stats()
	if st.WALRecords != 100 {
		t.Fatalf("WALRecords = %d, want 100", st.WALRecords)
	}
	if st.GroupCommits >= 10 {
		t.Fatalf("GroupCommits = %d for one batch, batching broken", st.GroupCommits)
	}
	for i := range keys {
		wantGet(t, s, keys[i], string(vals[i]))
	}
}

// Durable model equivalence: random puts/deletes/flushes/compactions with
// crash-or-close restarts sprinkled in always agree with a map model,
// because every op waits for its fsync before the model applies it.
func TestDurableModelEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			rng := sim.RNG(seed, 77)
			opts := Options{Dir: dir, FlushBytes: 512, MaxRuns: 3}
			s := mustOpen(t, opts)
			model := map[string]string{}
			for i := 0; i < 400; i++ {
				key := fmt.Sprintf("k%02d", rng.IntN(30))
				switch rng.IntN(10) {
				case 0:
					mustDelete(t, s, key)
					delete(model, key)
				case 1:
					s.Flush()
				case 2:
					s.Compact()
				case 3, 4:
					// Restart: half clean, half hard.
					if rng.IntN(2) == 0 {
						if err := s.Close(); err != nil {
							t.Fatalf("Close: %v", err)
						}
					} else {
						s.Crash()
					}
					s = mustOpen(t, opts)
				default:
					val := fmt.Sprintf("v%d-%d", i, rng.IntN(1000))
					mustPut(t, s, key, val)
					model[key] = val
				}
			}
			defer s.Close()
			if s.Len() != len(model) {
				t.Fatalf("Len = %d, model has %d", s.Len(), len(model))
			}
			for k, want := range model {
				wantGet(t, s, k, want)
			}
			for i := 0; i < 30; i++ {
				k := fmt.Sprintf("k%02d", i)
				if _, in := model[k]; !in {
					wantGet(t, s, k, "")
				}
			}
		})
	}
}

func BenchmarkDurablePut(b *testing.B) {
	s := mustOpen(b, Options{Dir: b.TempDir()})
	defer s.Close()
	val := make([]byte, 256)
	b.SetBytes(256)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if err := s.Put(fmt.Sprintf("key-%d", i%4096), val); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}
