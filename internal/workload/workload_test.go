package workload

import (
	"math"
	"testing"
	"testing/quick"

	"c3/internal/sim"
)

func TestZipfianInRangeProperty(t *testing.T) {
	r := sim.RNG(1, 1)
	f := func(n16 uint16) bool {
		n := uint64(n16)%1000 + 1
		z := NewZipfian(n, 0.99)
		for i := 0; i < 100; i++ {
			if z.Next(r) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfianSkew(t *testing.T) {
	const n = 10000
	z := NewZipfian(n, 0.99)
	r := sim.RNG(2, 2)
	counts := make([]int, n)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Next(r)]++
	}
	// Item 0 must be the hottest and carry a few percent of all draws.
	for i := 1; i < n; i++ {
		if counts[i] > counts[0] {
			t.Fatalf("item %d (%d draws) hotter than item 0 (%d)", i, counts[i], counts[0])
		}
	}
	frac0 := float64(counts[0]) / draws
	if frac0 < 0.05 || frac0 > 0.15 {
		t.Fatalf("hottest item fraction = %v, want ~0.10 for zipf(0.99, 10k)", frac0)
	}
	// Top-10 items should dominate ~25%+ of accesses.
	top := 0
	for i := 0; i < 10; i++ {
		top += counts[i]
	}
	if f := float64(top) / draws; f < 0.2 {
		t.Fatalf("top-10 fraction = %v, want > 0.2", f)
	}
}

func TestZipfianThetaControlsSkew(t *testing.T) {
	r := sim.RNG(3, 3)
	frac := func(theta float64) float64 {
		z := NewZipfian(1000, theta)
		hot := 0
		for i := 0; i < 50000; i++ {
			if z.Next(r) == 0 {
				hot++
			}
		}
		return float64(hot) / 50000
	}
	if frac(0.5) >= frac(0.99) {
		t.Fatal("higher theta should concentrate more mass on item 0")
	}
}

func TestZipfianPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"n=0":     func() { NewZipfian(0, 0.99) },
		"theta=0": func() { NewZipfian(10, 0) },
		"theta=1": func() { NewZipfian(10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestScrambledSpreadsHotKeys(t *testing.T) {
	const n = 1000
	s := NewScrambled(n, 0.99)
	r := sim.RNG(4, 4)
	counts := make([]int, n)
	for i := 0; i < 100000; i++ {
		v := s.Next(r)
		if v >= n {
			t.Fatalf("scrambled value %d out of range", v)
		}
		counts[v]++
	}
	// The hottest item must NOT be item 0 systematically — scrambling
	// relocates it. Find the argmax and verify the distribution is still
	// skewed (one item dominates).
	maxI, maxC := 0, 0
	for i, c := range counts {
		if c > maxC {
			maxI, maxC = i, c
		}
	}
	if float64(maxC)/100000 < 0.05 {
		t.Fatalf("scrambling destroyed the skew: max fraction %v", float64(maxC)/100000)
	}
	_ = maxI // location is arbitrary; only skew matters
}

func TestScrambledDeterministicMapping(t *testing.T) {
	// The same underlying item must always scramble to the same slot.
	a, b := fnv64(12345), fnv64(12345)
	if a != b {
		t.Fatal("fnv64 not deterministic")
	}
	if fnv64(1) == fnv64(2) {
		t.Fatal("fnv64 collides on adjacent inputs (suspicious)")
	}
}

func TestUniform(t *testing.T) {
	u := NewUniform(100)
	r := sim.RNG(5, 5)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[u.Next(r)]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("uniform skew at %d: %d/100000", i, c)
		}
	}
}

func TestUniformPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewUniform(0)
}

func TestMixFractions(t *testing.T) {
	r := sim.RNG(6, 6)
	for _, m := range []Mix{ReadHeavy, ReadOnly, UpdateHeavy} {
		reads := 0
		const n = 100000
		for i := 0; i < n; i++ {
			if m.Choose(r) == OpRead {
				reads++
			}
		}
		got := float64(reads) / n
		if math.Abs(got-m.ReadFrac) > 0.01 {
			t.Fatalf("%s: read fraction %v, want %v", m.Name, got, m.ReadFrac)
		}
	}
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "READ" || OpUpdate.String() != "UPDATE" ||
		OpMultiGet.String() != "MULTIGET" {
		t.Fatal("op names wrong")
	}
}

func TestMixMultiGetFraction(t *testing.T) {
	m := ReadHeavy.WithMultiGets(0.3)
	r := sim.RNG(7, 7)
	const n = 100000
	var reads, multis, updates int
	for i := 0; i < n; i++ {
		switch m.Choose(r) {
		case OpRead:
			reads++
		case OpMultiGet:
			multis++
		default:
			updates++
		}
	}
	if got := float64(updates) / n; math.Abs(got-(1-m.ReadFrac)) > 0.01 {
		t.Fatalf("update fraction %v, want %v", got, 1-m.ReadFrac)
	}
	gotMulti := float64(multis) / float64(reads+multis)
	if math.Abs(gotMulti-0.3) > 0.02 {
		t.Fatalf("multi-get fraction of reads = %v, want 0.3", gotMulti)
	}
}

// TestMixZeroMultiFracPreservesSequences: MultiFrac 0 must draw no extra
// randomness, so existing seeded workloads replay the exact same op streams.
func TestMixZeroMultiFracPreservesSequences(t *testing.T) {
	r1 := sim.RNG(8, 8)
	r2 := sim.RNG(8, 8)
	plain := ReadHeavy
	zeroMulti := ReadHeavy.WithMultiGets(0)
	for i := 0; i < 10000; i++ {
		if plain.Choose(r1) != zeroMulti.Choose(r2) {
			t.Fatalf("op stream diverged at %d", i)
		}
	}
}

func TestFixedBatch(t *testing.T) {
	if FixedBatch(16).Keys(nil) != 16 {
		t.Fatal("fixed batch size wrong")
	}
	if FixedBatch(0).Keys(nil) != 1 {
		t.Fatal("degenerate fixed batch must clamp to 1")
	}
}

func TestGeometricBatchMeanAndBounds(t *testing.T) {
	r := sim.RNG(9, 9)
	g := GeometricBatch{Mean: 16}
	const n = 200000
	total := 0
	for i := 0; i < n; i++ {
		k := g.Keys(r)
		if k < 1 {
			t.Fatalf("batch size %d < 1", k)
		}
		total += k
	}
	if mean := float64(total) / n; math.Abs(mean-16) > 0.5 {
		t.Fatalf("geometric mean = %v, want ≈16", mean)
	}
	capped := GeometricBatch{Mean: 64, Max: 8}
	for i := 0; i < 1000; i++ {
		if k := capped.Keys(r); k > 8 {
			t.Fatalf("batch size %d exceeds Max 8", k)
		}
	}
	if (GeometricBatch{Mean: 0.5}).Keys(r) != 1 {
		t.Fatal("sub-1 mean must clamp to 1")
	}
}

func TestFixedSize(t *testing.T) {
	if FixedSize(1024).Size(nil) != 1024 {
		t.Fatal("fixed size wrong")
	}
}

func TestZipfianFieldsBounds(t *testing.T) {
	zf := NewZipfianFields(10, 2048)
	r := sim.RNG(7, 7)
	short := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		sz := zf.Size(r)
		if sz < 10 || sz > 2048 {
			t.Fatalf("record size %d outside [10, 2048]", sz)
		}
		if sz < 512 {
			short++
		}
	}
	// Zipfian field lengths favour short values: most records stay under
	// a quarter of the 2 KB cap.
	if float64(short)/draws < 0.5 {
		t.Fatalf("sub-512B record fraction = %v, want > 0.5", float64(short)/draws)
	}
}

func TestZipfianFieldsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewZipfianFields(0, 100)
}

func TestKeyFormat(t *testing.T) {
	k := Key(42)
	if len(k) != 4+19 {
		t.Fatalf("key %q has wrong width", k)
	}
	if k[:4] != "user" {
		t.Fatalf("key %q missing prefix", k)
	}
	if Key(1) == Key(2) {
		t.Fatal("distinct items produced identical keys")
	}
}

func BenchmarkZipfianNext(b *testing.B) {
	z := NewZipfian(10_000_000, 0.99)
	r := sim.RNG(1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Next(r)
	}
}

func BenchmarkScrambledNext(b *testing.B) {
	s := NewScrambled(10_000_000, 0.99)
	r := sim.RNG(1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next(r)
	}
}
