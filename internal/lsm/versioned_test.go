package lsm

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestAppendSplitVersioned(t *testing.T) {
	raw := AppendVersioned(nil, 42, []byte("payload"))
	if len(raw) != VersionLen+7 {
		t.Fatalf("len = %d", len(raw))
	}
	ver, val := SplitVersioned(raw)
	if ver != 42 || string(val) != "payload" {
		t.Fatalf("split = %d, %q", ver, val)
	}
	// Short (unversioned legacy) values read as version 0 with raw payload.
	ver, val = SplitVersioned([]byte("abc"))
	if ver != 0 || string(val) != "abc" {
		t.Fatalf("short split = %d, %q", ver, val)
	}
}

func TestPutVersionedLastWriteWins(t *testing.T) {
	s := mustOpen(t, Options{})
	if ok, err := s.PutVersioned("k", 10, []byte("ten")); err != nil || !ok {
		t.Fatalf("first write: %v, %v", ok, err)
	}
	// Older and equal versions lose silently — idempotent success.
	if ok, err := s.PutVersioned("k", 9, []byte("nine")); err != nil || ok {
		t.Fatalf("older write applied: %v, %v", ok, err)
	}
	if ok, err := s.PutVersioned("k", 10, []byte("ten2")); err != nil || ok {
		t.Fatalf("equal write applied: %v, %v", ok, err)
	}
	out, ver, ok := s.GetVersioned(nil, "k")
	if !ok || ver != 10 || string(out) != "ten" {
		t.Fatalf("GetVersioned = %q, %d, %v", out, ver, ok)
	}
	// Newer wins.
	if ok, err := s.PutVersioned("k", 11, []byte("eleven")); err != nil || !ok {
		t.Fatalf("newer write: %v, %v", ok, err)
	}
	if ver, ok := s.Version("k"); !ok || ver != 11 {
		t.Fatalf("Version = %d, %v", ver, ok)
	}
	if _, ok := s.Version("missing"); ok {
		t.Fatal("Version(missing) reported present")
	}
	// Tombstoned keys always lose their version: any write applies.
	s.Delete("k")
	if ok, err := s.PutVersioned("k", 1, []byte("reborn")); err != nil || !ok {
		t.Fatalf("write over tombstone: %v, %v", ok, err)
	}
	if v, _, ok := s.GetVersioned(nil, "k"); !ok || string(v) != "reborn" {
		t.Fatalf("after tombstone = %q, %v", v, ok)
	}
}

func TestVersionGuardAcrossFlush(t *testing.T) {
	s := mustOpen(t, Options{})
	if _, err := s.PutVersioned("k", 5, []byte("five")); err != nil {
		t.Fatal(err)
	}
	s.Flush() // guard must read the version out of the run, not the memtable
	if ok, _ := s.PutVersioned("k", 4, []byte("four")); ok {
		t.Fatal("older write applied over flushed newer value")
	}
	if ok, _ := s.PutVersioned("k", 6, []byte("six")); !ok {
		t.Fatal("newer write rejected over flushed older value")
	}
	if out, ver, ok := s.GetVersioned(nil, "k"); !ok || ver != 6 || string(out) != "six" {
		t.Fatalf("GetVersioned = %q, %d, %v", out, ver, ok)
	}
}

func TestPutRawIfNewer(t *testing.T) {
	s := mustOpen(t, Options{})
	newer := AppendVersioned(nil, 20, []byte("new"))
	older := AppendVersioned(nil, 19, []byte("old"))
	if ok, err := s.PutRawIfNewer("k", newer); err != nil || !ok {
		t.Fatalf("first raw put: %v, %v", ok, err)
	}
	if ok, err := s.PutRawIfNewer("k", older); err != nil || ok {
		t.Fatalf("older raw put applied: %v, %v", ok, err)
	}
	if out, ver, _ := s.GetVersioned(nil, "k"); ver != 20 || string(out) != "new" {
		t.Fatalf("value = %q at %d", out, ver)
	}
	// Prefix-less raw values carry version 0: the old PutIfAbsent contract.
	if ok, _ := s.PutRawIfNewer("fresh", []byte("x")); !ok {
		t.Fatal("raw put on absent key rejected")
	}
	if ok, _ := s.PutRawIfNewer("fresh", []byte("y")); ok {
		t.Fatal("version-0 raw put applied over a live key")
	}
}

func TestPutAllVersionedGuardsPerKey(t *testing.T) {
	s := mustOpen(t, Options{})
	if _, err := s.PutVersioned("b", 100, []byte("newer")); err != nil {
		t.Fatal(err)
	}
	keys := []string{"a", "b", "c"}
	vals := [][]byte{[]byte("va"), []byte("vb"), []byte("vc")}
	if err := s.PutAllVersioned(keys, vals, 50); err != nil {
		t.Fatal(err)
	}
	// a and c applied at 50; b kept its newer value.
	for _, k := range []string{"a", "c"} {
		if _, ver, ok := s.GetVersioned(nil, k); !ok || ver != 50 {
			t.Fatalf("%s version = %d, %v", k, ver, ok)
		}
	}
	if out, ver, _ := s.GetVersioned(nil, "b"); ver != 100 || string(out) != "newer" {
		t.Fatalf("b = %q at %d", out, ver)
	}
	// A batch where every key loses is a silent no-op.
	if err := s.PutAllVersioned(keys, vals, 10); err != nil {
		t.Fatal(err)
	}
	if _, ver, _ := s.GetVersioned(nil, "a"); ver != 50 {
		t.Fatalf("a clobbered to %d", ver)
	}
	if err := s.PutAllVersioned(nil, nil, 1); err != nil {
		t.Fatal(err)
	}
}

func TestVersionedSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	if _, err := s.PutVersioned("k", 30, []byte("thirty")); err != nil {
		t.Fatal(err)
	}
	s.Flush() // version guard via SST, including the file-backed prefix read
	if _, err := s.PutVersioned("wal-only", 7, []byte("seven")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s = mustOpen(t, Options{Dir: dir})
	defer s.Close()
	if out, ver, ok := s.GetVersioned(nil, "k"); !ok || ver != 30 || string(out) != "thirty" {
		t.Fatalf("recovered k = %q, %d, %v", out, ver, ok)
	}
	if _, ver, ok := s.GetVersioned(nil, "wal-only"); !ok || ver != 7 {
		t.Fatalf("recovered wal-only version = %d, %v", ver, ok)
	}
	if ok, _ := s.PutVersioned("k", 29, []byte("late")); ok {
		t.Fatal("older write applied after recovery")
	}
}

func TestSidecarLogRoundtripAndTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "peer-1.log")
	var b []byte
	b = AppendLogRecord(b, LogPut, "alpha", AppendVersioned(nil, 3, []byte("va")))
	b = AppendLogRecord(b, LogPut, "beta", AppendVersioned(nil, 4, []byte("vb")))
	whole := int64(len(b))
	b = append(b, 0xDE, 0xAD) // torn tail: a partial third record
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	var keys []string
	var vers []uint64
	valid, err := ReplayLog(path, func(op byte, key string, val []byte) {
		if op != LogPut {
			t.Fatalf("op = %d", op)
		}
		ver, payload := SplitVersioned(val)
		if !bytes.HasPrefix(payload, []byte("v")) {
			t.Fatalf("payload = %q", payload)
		}
		keys = append(keys, key)
		vers = append(vers, ver)
	})
	if err != nil {
		t.Fatal(err)
	}
	if valid != whole {
		t.Fatalf("valid prefix = %d, want %d", valid, whole)
	}
	if len(keys) != 2 || keys[0] != "alpha" || keys[1] != "beta" || vers[0] != 3 || vers[1] != 4 {
		t.Fatalf("replayed %v at %v", keys, vers)
	}

	// Truncating the torn tail leaves a log that replays identically.
	if err := TruncateLog(path, valid); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != whole {
		t.Fatalf("size after truncate = %v, %v", fi.Size(), err)
	}
	n := 0
	if _, err := ReplayLog(path, func(byte, string, []byte) { n++ }); err != nil || n != 2 {
		t.Fatalf("replay after truncate: %d records, %v", n, err)
	}
}

func TestDeleteVersionedGuard(t *testing.T) {
	s := mustOpen(t, Options{})
	if _, err := s.PutVersioned("k", 10, []byte("ten")); err != nil {
		t.Fatal(err)
	}
	// An older delete loses to the stored version — idempotent no-op.
	if applied, err := s.DeleteVersioned("k", 9); err != nil || applied {
		t.Fatalf("older delete applied: %v, %v", applied, err)
	}
	if _, _, ok := s.GetVersioned(nil, "k"); !ok {
		t.Fatal("older delete removed the key")
	}
	// An equal delete loses too (>= guard, same as PutVersioned).
	if applied, _ := s.DeleteVersioned("k", 10); applied {
		t.Fatal("equal-version delete applied")
	}
	// A newer delete wins.
	if applied, err := s.DeleteVersioned("k", 11); err != nil || !applied {
		t.Fatalf("newer delete: %v, %v", applied, err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("key readable after newer delete")
	}
	// Deleting an absent key is an applied no-op (tombstone written).
	if applied, err := s.DeleteVersioned("ghost", 5); err != nil || !applied {
		t.Fatalf("delete of absent key: %v, %v", applied, err)
	}
	// Version-0 deletes are unconditional, matching the ver==0 put contract.
	if _, err := s.PutVersioned("u", 99, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if applied, err := s.DeleteVersioned("u", 0); err != nil || !applied {
		t.Fatalf("unversioned delete: %v, %v", applied, err)
	}
	if _, ok := s.Get("u"); ok {
		t.Fatal("key readable after unversioned delete")
	}
}

func TestApplyMultiMixedPutsAndDeletes(t *testing.T) {
	s := mustOpen(t, Options{})
	if _, err := s.PutVersioned("old", 100, []byte("keep")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutVersioned("gone", 1, []byte("bye")); err != nil {
		t.Fatal(err)
	}
	keys := []string{"a", "gone", "old", "b"}
	vers := []uint64{5, 6, 50, 0}
	vals := [][]byte{[]byte("va"), nil, []byte("late"), []byte("vb")}
	dels := []bool{false, true, false, false}
	if err := s.ApplyMulti(keys, vers, vals, dels); err != nil {
		t.Fatal(err)
	}
	// Put applied, delete applied, guarded put skipped — one commit group.
	if v, ver, ok := s.GetVersioned(nil, "a"); !ok || ver != 5 || string(v) != "va" {
		t.Fatalf("a = %q, %d, %v", v, ver, ok)
	}
	if _, ok := s.Get("gone"); ok {
		t.Fatal("deleted key still readable")
	}
	if v, ver, _ := s.GetVersioned(nil, "old"); ver != 100 || string(v) != "keep" {
		t.Fatalf("guarded key clobbered: %q at %d", v, ver)
	}
	if v, ok := s.Get("b"); !ok || string(v) != "vb" {
		t.Fatalf("b = %q, %v", v, ok)
	}
	if s.Stats().Deletes == 0 {
		t.Fatal("delete not counted")
	}
}

func TestApplyMultiDeletesSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	if _, err := s.PutVersioned("k", 1, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyMulti([]string{"k"}, []uint64{2}, [][]byte{nil}, []bool{true}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s = mustOpen(t, Options{Dir: dir})
	defer s.Close()
	if _, ok := s.Get("k"); ok {
		t.Fatal("batched delete lost across reopen")
	}
}

// TestMissVsEmpty pins the three distinct read outcomes the RESP gateway
// depends on: present-empty, tombstoned, and never-written.
func TestMissVsEmpty(t *testing.T) {
	s := mustOpen(t, Options{})
	if err := s.Put("empty", []byte{}); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get("empty"); !ok || v == nil || len(v) != 0 {
		t.Fatalf("present-empty = %v, %v (want non-nil zero-length, true)", v, ok)
	}
	if err := s.Put("tomb", []byte("x")); err != nil {
		t.Fatal(err)
	}
	s.Delete("tomb")
	if _, ok := s.Get("tomb"); ok {
		t.Fatal("tombstoned key reported present")
	}
	if _, ok := s.Get("never"); ok {
		t.Fatal("absent key reported present")
	}
	// Present-empty survives a flush to disk.
	s.Flush()
	if v, ok := s.Get("empty"); !ok || len(v) != 0 {
		t.Fatalf("present-empty after flush = %v, %v", v, ok)
	}
}

// TestSidecarLogDeleteRecords pins the walDelHint framing: sidecar delete
// records are put-shaped (they carry the version stamp in the value section)
// and replay with op == LogDelete.
func TestSidecarLogDeleteRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "peer-2.log")
	var b []byte
	b = AppendLogRecord(b, LogPut, "alive", AppendVersioned(nil, 7, []byte("v")))
	b = AppendLogRecord(b, LogDelete, "dead", AppendVersioned(nil, 8, nil))
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	type rec struct {
		op  byte
		key string
		ver uint64
	}
	var got []rec
	if _, err := ReplayLog(path, func(op byte, key string, val []byte) {
		ver, _ := SplitVersioned(val)
		got = append(got, rec{op, key, ver})
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("replayed %d records", len(got))
	}
	if got[0] != (rec{LogPut, "alive", 7}) {
		t.Fatalf("rec 0 = %+v", got[0])
	}
	if got[1] != (rec{LogDelete, "dead", 8}) {
		t.Fatalf("rec 1 = %+v (delete hint lost its version)", got[1])
	}
}
