package kvstore

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"c3/internal/core"
	"c3/internal/lsm"
	"c3/internal/wire"
)

// Hinted handoff (Cassandra §2: writes toward a down replica are banked on
// the coordinator and delivered when the replica returns). A write that
// cannot reach a replica becomes a hint — the key, the coordinator's version
// stamp, and the payload — queued per target and replayed with exponential
// backoff once the peer is reachable again. Replayed writes go through the
// replica's last-write-wins guard, so a hint arriving after the key moved on
// is skipped, which makes replay idempotent: a durable node appends every
// hint to a per-target sidecar log in the WAL record format and simply
// replays the whole file after a restart.
//
// Hints are availability debt, and the debt is bounded: each target queues at
// most Config.HintCap records. When a peer is down AND its queue is full,
// quorum-level writes covering it refuse up front (StatusQuorumUnavailable)
// instead of growing the backlog — the caller finds out the cluster is
// degraded rather than the coordinator hiding it in an unbounded log.
//
// Replay accounting follows the probe rules: every attempt records OnSend,
// balanced by OnResponse with the peer's piggybacked feedback on success —
// replay doubles as a freshness probe of a peer the ranker wrote off — and by
// OnAbandon on failure, so a still-dead peer never accumulates phantom
// outstanding load and never feeds failure penalties into EWMAs from the
// background path.

// defaultHintCap is the per-target queue bound when Config.HintCap is zero.
const defaultHintCap = 512

// Replay backoff: first retry after hintBackoffMin, doubling to
// hintBackoffMax while the peer stays unreachable.
const (
	hintBackoffMin = 50 * time.Millisecond
	hintBackoffMax = 2 * time.Second
)

// hintRec is one banked write.
type hintRec struct {
	key string
	ver uint64
	val []byte // payload (no version prefix); private copy
	del bool   // banked delete: replayed as a guarded tombstone
}

// hintStore is a node's handoff state: per-target FIFO queues (authoritative)
// plus, on durable nodes, per-target append-only sidecar logs under
// <storeDir>/hints. The in-memory queue drives replay; the log exists so a
// coordinator restart does not void the debt.
type hintStore struct {
	n   *Node
	dir string // "" on in-memory nodes: queues don't survive restarts
	cap int

	mu        sync.Mutex
	q         map[core.ServerID][]hintRec
	replaying map[core.ServerID]bool
	files     map[core.ServerID]*os.File
	shut      bool

	stored   atomic.Uint64 // hints accepted (not counting disk recovery)
	replayed atomic.Uint64 // hints delivered to their target
	dropped  atomic.Uint64 // hints refused because the target's queue was full
}

// openHints builds the node's hint store, recovering any per-target logs
// found under storeDir from a previous incarnation. capacity < 0 disables
// handoff entirely (returns nil); 0 means defaultHintCap.
func openHints(n *Node, storeDir string, capacity int) (*hintStore, error) {
	if capacity < 0 {
		return nil, nil
	}
	if capacity == 0 {
		capacity = defaultHintCap
	}
	h := &hintStore{
		n:         n,
		cap:       capacity,
		q:         make(map[core.ServerID][]hintRec),
		replaying: make(map[core.ServerID]bool),
		files:     make(map[core.ServerID]*os.File),
	}
	if storeDir == "" {
		return h, nil
	}
	h.dir = filepath.Join(storeDir, "hints")
	if err := os.MkdirAll(h.dir, 0o755); err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(h.dir)
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "target-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		id, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "target-"), ".log"))
		if err != nil {
			continue
		}
		target := core.ServerID(id)
		path := filepath.Join(h.dir, name)
		valid, err := lsm.ReplayLog(path, func(op byte, key string, val []byte) {
			if op != lsm.LogPut && op != lsm.LogDelete {
				return
			}
			ver, payload := lsm.SplitVersioned(val)
			cp := make([]byte, len(payload))
			copy(cp, payload)
			h.q[target] = append(h.q[target], hintRec{
				key: strings.Clone(key), ver: ver, val: cp, del: op == lsm.LogDelete})
		})
		if err != nil {
			return nil, err
		}
		// Cut a torn tail (the previous process died mid-append) so the
		// reopened log appends from a clean record boundary.
		if err := lsm.TruncateLog(path, valid); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// kickAll starts replay for every target with recovered hints. Called once
// the node is serving (replay dials peers, so it must not run before the
// topology and selector exist).
func (h *hintStore) kickAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for t, q := range h.q {
		if len(q) > 0 {
			h.startReplayLocked(t)
		}
	}
}

// add banks one write toward target, appending it to the target's sidecar log
// on durable nodes, and ensures a replay goroutine is chasing the queue. It
// reports false — and counts a drop — when the target's queue is at cap.
// key must be a durable string; val is copied. del banks a guarded delete
// (val ignored): logged as LogDelete, whose payload still carries the
// version stamp so recovery keeps the replay guard.
func (h *hintStore) add(target core.ServerID, key string, ver uint64, val []byte, del bool) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.shut {
		return false
	}
	if len(h.q[target]) >= h.cap {
		h.dropped.Add(1)
		return false
	}
	if del {
		val = nil
	}
	cp := make([]byte, len(val))
	copy(cp, val)
	h.q[target] = append(h.q[target], hintRec{key: key, ver: ver, val: cp, del: del})
	h.stored.Add(1)
	if f := h.fileForLocked(target); f != nil {
		op := byte(lsm.LogPut)
		if del {
			op = lsm.LogDelete
		}
		rec := lsm.AppendLogRecord(nil, op, key, lsm.AppendVersioned(nil, ver, val))
		f.Write(rec) // best-effort: the queue is authoritative while we live
	}
	h.startReplayLocked(target)
	return true
}

// full reports whether target's queue is at cap.
func (h *hintStore) full(target core.ServerID) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.q[target]) >= h.cap
}

// pending reports the total number of queued hints across targets.
func (h *hintStore) pending() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	total := 0
	for _, q := range h.q {
		total += len(q)
	}
	return total
}

// fileForLocked lazily opens the append handle for target's sidecar log.
func (h *hintStore) fileForLocked(target core.ServerID) *os.File {
	if h.dir == "" {
		return nil
	}
	if f, ok := h.files[target]; ok {
		return f
	}
	path := filepath.Join(h.dir, fmt.Sprintf("target-%d.log", target))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		f = nil // degrade to memory-only for this target
	}
	h.files[target] = f
	return f
}

// startReplayLocked spawns the replay goroutine for target unless one is
// already chasing its queue.
func (h *hintStore) startReplayLocked(target core.ServerID) {
	if h.replaying[target] {
		return
	}
	h.replaying[target] = true
	h.n.wg.Add(1)
	go h.replayLoop(target)
}

// replayLoop delivers target's queue head-first, backing off exponentially
// while the peer stays unreachable, and exits when the queue drains (the
// sidecar log is truncated then — per-record removal is unnecessary because
// replaying an already-delivered hint is a guarded no-op) or the node shuts
// down.
func (h *hintStore) replayLoop(target core.ServerID) {
	defer h.n.wg.Done()
	backoff := hintBackoffMin
	for {
		h.mu.Lock()
		if h.shut || len(h.q[target]) == 0 || !h.n.topo.Load().serves(target) {
			if !h.shut {
				if len(h.q[target]) > 0 {
					// The topology retired the target: its ranges moved, the
					// debt is void.
					h.dropped.Add(uint64(len(h.q[target])))
					h.q[target] = nil
				}
				h.truncateLocked(target)
			}
			h.replaying[target] = false
			h.mu.Unlock()
			return
		}
		rec := h.q[target][0]
		h.mu.Unlock()
		if h.deliver(target, rec) {
			h.replayed.Add(1)
			backoff = hintBackoffMin
			h.mu.Lock()
			if q := h.q[target]; len(q) > 0 {
				h.q[target] = q[1:]
			}
			h.mu.Unlock()
			continue
		}
		select {
		case <-h.n.closed:
			h.mu.Lock()
			h.replaying[target] = false
			h.mu.Unlock()
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > hintBackoffMax {
			backoff = hintBackoffMax
		}
	}
}

// deliver attempts one hint: an internal versioned write to the target, with
// probe-style selector accounting (OnSend balanced by OnResponse on success,
// OnAbandon on failure — a dead peer must not accumulate phantom load).
func (h *hintStore) deliver(target core.ServerID, rec hintRec) bool {
	n := h.n
	p, err := n.peer(target)
	if err != nil {
		return false
	}
	sel := n.selFor(rec.key)
	sel.OnSend(target, time.Now().UnixNano())
	sent := time.Now()
	out, err := p.write(rec.key, rec.val, rec.ver, rec.del)
	if err != nil || !out.OK {
		sel.OnAbandon(target, time.Now().UnixNano())
		return false
	}
	n.accountReadSuccess(sel, target, out.FB, time.Since(sent), time.Now())
	return true
}

// truncateLocked empties target's sidecar log once its queue has drained.
func (h *hintStore) truncateLocked(target core.ServerID) {
	if f := h.files[target]; f != nil {
		f.Truncate(0)
	}
}

// close releases the sidecar log handles. Replay goroutines are already done:
// the node waits out its WaitGroup before closing the store and the hints.
func (h *hintStore) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.shut = true
	for _, f := range h.files {
		if f != nil {
			f.Close()
		}
	}
	h.files = make(map[core.ServerID]*os.File)
}

// hintWrite banks the write in m toward an unreachable replica, if handoff is
// enabled and the target's queue has room. m.Value may alias a pooled buffer;
// add copies it synchronously.
func (n *Node) hintWrite(s core.ServerID, m wire.WriteReq) {
	if n.hints == nil {
		return
	}
	n.hints.add(s, m.Key, m.Version, m.Value, m.Del)
}

// hintValues banks one hint per key of a failed sub-batch write.
func (n *Node) hintValues(s core.ServerID, ver uint64, keys []string, vals [][]byte) {
	if n.hints == nil {
		return
	}
	for i := range keys {
		n.hints.add(s, keys[i], ver, vals[i], false)
	}
}

// hintFull reports whether target's hint queue is at cap (always false when
// handoff is disabled: there is no debt to bound).
func (n *Node) hintFull(s core.ServerID) bool {
	return n.hints != nil && n.hints.full(s)
}

// HintsPending reports the number of banked writes awaiting replay.
func (n *Node) HintsPending() int {
	if n.hints == nil {
		return 0
	}
	return n.hints.pending()
}

// HintsStored reports writes banked as hints by this coordinator.
func (n *Node) HintsStored() uint64 {
	if n.hints == nil {
		return 0
	}
	return n.hints.stored.Load()
}

// HintsReplayed reports banked writes delivered to their recovered target.
func (n *Node) HintsReplayed() uint64 {
	if n.hints == nil {
		return 0
	}
	return n.hints.replayed.Load()
}

// HintsDropped reports hints refused because a target's queue was at cap (or
// voided because the topology retired the target).
func (n *Node) HintsDropped() uint64 {
	if n.hints == nil {
		return 0
	}
	return n.hints.dropped.Load()
}
