// Package core implements the C3 replica-selection algorithm (NSDI'15):
// cubic replica ranking driven by piggybacked server feedback, per-server
// cubic rate control, and replica-group backpressure scheduling. It also
// implements every baseline the paper evaluates against — least-outstanding
// requests (LOR), rate-limited round-robin (RR), an oracle, Cassandra-style
// Dynamic Snitching, and the "did not fare well" §6 extras (uniform random,
// least-response-time, weighted random, power-of-two-choices).
//
// The package is deliberately substrate-neutral: nothing here reads a wall
// clock, sleeps, or spawns goroutines. Every method takes an explicit
// timestamp (int64 nanoseconds), so the identical code runs inside the
// discrete-event simulators (internal/queuesim, internal/cassim) and inside
// the live TCP key-value store (internal/kvstore).
package core

import (
	"time"
)

// ServerID identifies a replica server within a cluster.
type ServerID int32

// Feedback is the per-response server feedback that C3 piggybacks on every
// reply (§3.1): the server's queue size sampled as the response is
// dispatched, and the service time of the request.
type Feedback struct {
	// QueueSize is the number of requests pending at the server when the
	// response was sent.
	QueueSize float64
	// ServiceTime is how long the server spent serving the request.
	ServiceTime time.Duration
}

// Ranker orders the replicas of a group by preference. Implementations keep
// per-server client-side state (EWMAs, outstanding counts, histories) and are
// not safe for concurrent use; Client adds locking for multi-goroutine
// substrates.
type Ranker interface {
	// Name identifies the strategy in experiment output ("C3", "LOR", ...).
	Name() string
	// Rank writes group into dst in preference order (best first) and
	// returns dst[:len(group)]. dst must not alias group and must have
	// capacity ≥ len(group); pass nil to allocate.
	Rank(dst, group []ServerID, now int64) []ServerID
	// OnSend records that a request was dispatched to s at time now.
	OnSend(s ServerID, now int64)
	// OnResponse records a response from s carrying feedback fb, observed
	// after round-trip time rtt, at time now.
	OnResponse(s ServerID, fb Feedback, rtt time.Duration, now int64)
}

// prepare copies group into dst, allocating if needed.
func prepare(dst, group []ServerID) []ServerID {
	if cap(dst) < len(group) {
		dst = make([]ServerID, len(group))
	}
	dst = dst[:len(group)]
	copy(dst, group)
	return dst
}

// seconds converts a duration to float64 seconds.
func seconds(d time.Duration) float64 { return float64(d) / float64(time.Second) }
