package lsm

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func mustOpenSharded(tb testing.TB, opts Options, n int) *Sharded {
	tb.Helper()
	s, err := OpenSharded(opts, n)
	if err != nil {
		tb.Fatalf("OpenSharded: %v", err)
	}
	return s
}

// shardedKeys returns count keys with every shard of an n-shard store
// represented (the FNV routing is uniform enough that a few dozen keys cover
// eight shards; the test fails loudly if the spread ever degenerates).
func shardedKeys(tb testing.TB, s *Sharded, count int) []string {
	tb.Helper()
	keys := make([]string, count)
	hit := make([]bool, s.ShardCount())
	for i := range keys {
		keys[i] = fmt.Sprintf("shard-key-%03d", i)
		hit[s.ShardFor(keys[i])] = true
	}
	for sh, ok := range hit {
		if !ok {
			tb.Fatalf("no key of %d routed to shard %d/%d", count, sh, s.ShardCount())
		}
	}
	return keys
}

// Routing is a pure function of the key: the same key lands on the same
// shard on every call and on every store with the same shard count — the
// property that makes per-shard replica feedback coherent across nodes.
func TestShardedRoutingDeterministic(t *testing.T) {
	a := mustOpenSharded(t, Options{}, 8)
	b := mustOpenSharded(t, Options{}, 8)
	defer a.Close()
	defer b.Close()
	for i := 0; i < 256; i++ {
		key := fmt.Sprintf("route-%03d", i)
		sh := a.ShardFor(key)
		if sh != b.ShardFor(key) || sh != a.ShardFor(key) {
			t.Fatalf("key %s routes unstably", key)
		}
		if err := a.Put(key, []byte(key)); err != nil {
			t.Fatal(err)
		}
		if got, ok := a.Shard(sh).Get(key); !ok || string(got) != key {
			t.Fatalf("key %s not on its routed shard %d", key, sh)
		}
		for other := 0; other < a.ShardCount(); other++ {
			if other != sh && a.Shard(other).Has(key) {
				t.Fatalf("key %s leaked onto shard %d (routed %d)", key, other, sh)
			}
		}
	}
}

// The on-disk SHARDS marker outlives the knob: a store created with 4 shards
// reopens with 4 no matter what the caller asks for, and a legacy unsharded
// directory opens as a single shard even when more are requested.
func TestShardedLayoutPersists(t *testing.T) {
	dir := t.TempDir()
	s := mustOpenSharded(t, Options{Dir: dir}, 4)
	keys := shardedKeys(t, s, 64)
	for _, k := range keys {
		if err := s.Put(k, []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s = mustOpenSharded(t, Options{Dir: dir}, 8) // knob says 8; disk says 4
	if got := s.ShardCount(); got != 4 {
		t.Fatalf("reopened with %d shards, want the persisted 4", got)
	}
	for _, k := range keys {
		if got, ok := s.Get(k); !ok || string(got) != "v-"+k {
			t.Fatalf("key %s = %q,%v after reopen", k, got, ok)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	legacy := t.TempDir()
	u := mustOpen(t, Options{Dir: legacy})
	mustPut(t, u, "legacy-key", "legacy-val")
	u.Flush()
	if err := u.Close(); err != nil {
		t.Fatal(err)
	}
	s = mustOpenSharded(t, Options{Dir: legacy}, 4)
	defer s.Close()
	if got := s.ShardCount(); got != 1 {
		t.Fatalf("legacy layout opened with %d shards, want 1", got)
	}
	if got, ok := s.Get("legacy-key"); !ok || string(got) != "legacy-val" {
		t.Fatalf("legacy key = %q,%v", got, ok)
	}
}

// PutMulti splits a heterogeneous batch by shard — versioned records keep
// their last-write-wins guard, raw records overwrite — and PutAll/
// PutAllVersioned ride the same partitioned path.
func TestShardedBatchPrimitives(t *testing.T) {
	s := mustOpenSharded(t, Options{Dir: t.TempDir()}, 4)
	defer s.Close()

	keys := shardedKeys(t, s, 48)
	vers := make([]uint64, len(keys))
	vals := make([][]byte, len(keys))
	for i := range keys {
		vers[i] = uint64(100 + i)
		vals[i] = []byte("m1-" + keys[i])
	}
	if err := s.PutMulti(keys, vers, vals); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		got, v, ok := s.GetVersioned(nil, k)
		if !ok || string(got) != "m1-"+k || v != vers[i] {
			t.Fatalf("key %s = %q,ver=%d,%v after PutMulti, want %q at %d",
				k, got, v, ok, "m1-"+k, vers[i])
		}
	}

	// A second PutMulti with stale versions: the per-key last-write-wins
	// guard must reject every record without failing the batch.
	stale := make([]uint64, len(keys))
	staleVals := make([][]byte, len(keys))
	for i := range keys {
		stale[i] = 1 // below the installed 100+i
		staleVals[i] = []byte("stale-" + keys[i])
	}
	if err := s.PutMulti(keys, stale, staleVals); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if got, v, ok := s.GetVersioned(nil, k); !ok || string(got) != "m1-"+k || v != vers[i] {
			t.Fatalf("stale PutMulti clobbered key %s: %q,ver=%d,%v", k, got, v, ok)
		}
	}

	// ver==0 records in a PutMulti batch are raw overwrites: no guard, no
	// version prefix — the path internal fan-out writes take.
	zeros := make([]uint64, len(keys))
	rawVals := make([][]byte, len(keys))
	for i := range keys {
		rawVals[i] = []byte("m2-" + keys[i])
	}
	if err := s.PutMulti(keys, zeros, rawVals); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if got, ok := s.Get(k); !ok || string(got) != "m2-"+k {
			t.Fatalf("key %s = %q,%v after raw PutMulti", k, got, ok)
		}
	}

	// PutAllVersioned shares the guard and the commit group across shards.
	fresh := make([]string, 16)
	freshVals := make([][]byte, 16)
	for i := range fresh {
		fresh[i] = fmt.Sprintf("fresh-key-%03d", i)
		freshVals[i] = []byte("f-" + fresh[i])
	}
	if err := s.PutAllVersioned(fresh, freshVals, 10_000); err != nil {
		t.Fatal(err)
	}
	for _, k := range fresh {
		if got, v, ok := s.GetVersioned(nil, k); !ok || string(got) != "f-"+k || v != 10_000 {
			t.Fatalf("key %s = %q,ver=%d,%v after PutAllVersioned", k, got, v, ok)
		}
	}
}

// copyTree snapshots src (including shard subdirectories) into a fresh
// directory — the sharded analogue of copyDir's power-cut disk image.
func copyTree(tb testing.TB, src string) string {
	tb.Helper()
	dst := tb.TempDir()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			if rel == "." {
				return nil
			}
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), data, 0o644)
	})
	if err != nil {
		tb.Fatal(err)
	}
	return dst
}

// Crash-point injection across shard counts: snapshot the whole store root
// the instant one shard is mid-flush (SST written, WAL not yet rotated /
// manifest not yet updated / inputs not yet deleted) and prove the snapshot
// recovers every acked write — the other shards replay their own WALs in
// parallel, unaffected by the interrupted sibling.
func TestShardedCrashPointRecovery(t *testing.T) {
	for _, shards := range []int{1, 4, 8} {
		for _, point := range []string{"flush.sst", "flush.manifest", "flush.done"} {
			t.Run(fmt.Sprintf("shards=%d/%s", shards, point), func(t *testing.T) {
				dir := t.TempDir()
				var mu sync.Mutex
				var snap string
				opts := Options{Dir: dir, FlushBytes: 1 << 30, MaxRuns: 100}
				opts.hook = func(ev string) {
					mu.Lock()
					defer mu.Unlock()
					if ev == point && snap == "" {
						snap = copyTree(t, dir)
					}
				}
				s := mustOpenSharded(t, opts, shards)
				keys := shardedKeys(t, s, 64)
				for _, k := range keys {
					if err := s.Put(k, []byte("v1-"+k)); err != nil {
						t.Fatal(err)
					}
				}
				if err := s.Delete(keys[0]); err != nil {
					t.Fatal(err)
				}
				s.Flush() // fires the hook on whichever shard hits point first
				mu.Lock()
				got := snap
				mu.Unlock()
				if got == "" {
					t.Fatalf("hook %s never fired", point)
				}
				s.Crash()

				r := mustOpenSharded(t, Options{Dir: got}, shards)
				defer r.Close()
				if rc := r.ShardCount(); rc != shards {
					t.Fatalf("snapshot recovered %d shards, want %d", rc, shards)
				}
				for _, k := range keys[1:] {
					if v, ok := r.Get(k); !ok || string(v) != "v1-"+k {
						t.Fatalf("acked key %s = %q,%v after crash at %s", k, v, ok, point)
					}
				}
				if _, ok := r.Get(keys[0]); ok {
					t.Fatalf("deleted key %s resurrected after crash at %s", keys[0], point)
				}
				err := filepath.WalkDir(got, func(path string, d os.DirEntry, err error) error {
					if err == nil && strings.HasSuffix(d.Name(), ".tmp") {
						t.Errorf("orphan %s survived recovery", path)
					}
					return err
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// Per-shard orphan cleanup is scoped to the shard's own directory: junk
// planted in one shard disappears on reopen, a sibling shard's real files
// survive untouched, and files in the store root (which no shard owns)
// are never reaped.
func TestShardedOrphanCleanupIsolation(t *testing.T) {
	dir := t.TempDir()
	s := mustOpenSharded(t, Options{Dir: dir}, 4)
	keys := shardedKeys(t, s, 64)
	for _, k := range keys {
		if err := s.Put(k, []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	shard0 := filepath.Join(dir, "shard-0")
	shard1 := filepath.Join(dir, "shard-1")
	for _, orphan := range []string{"999999.sst", "999998.sst.tmp", "MANIFEST.tmp"} {
		if err := os.WriteFile(filepath.Join(shard0, orphan), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Root-level files belong to no shard; the sweeps must leave them alone.
	rootStray := filepath.Join(dir, "999999.sst")
	if err := os.WriteFile(rootStray, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadDir(shard1)
	if err != nil {
		t.Fatal(err)
	}
	var keep []string
	for _, ent := range before {
		if strings.HasSuffix(ent.Name(), ".sst") || ent.Name() == manifestName {
			keep = append(keep, ent.Name())
		}
	}
	if len(keep) == 0 {
		t.Fatal("shard-1 has no flushed files to guard")
	}

	s = mustOpenSharded(t, Options{Dir: dir}, 4)
	defer s.Close()
	for _, k := range keys {
		if got, ok := s.Get(k); !ok || string(got) != "v-"+k {
			t.Fatalf("key %s = %q,%v after orphan sweep", k, got, ok)
		}
	}
	for _, orphan := range []string{"999999.sst", "999998.sst.tmp", "MANIFEST.tmp"} {
		if _, err := os.Stat(filepath.Join(shard0, orphan)); !os.IsNotExist(err) {
			t.Errorf("orphan shard-0/%s survived reopen", orphan)
		}
	}
	if _, err := os.Stat(rootStray); err != nil {
		t.Errorf("root stray file reaped by a shard sweep: %v", err)
	}
	for _, name := range keep {
		if _, err := os.Stat(filepath.Join(shard1, name)); err != nil {
			t.Errorf("sibling file shard-1/%s touched by shard-0 cleanup: %v", name, err)
		}
	}
}
