// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against `// want "regexp"` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the stdlib only.
//
// Fixtures live in GOPATH-style layout under the test's testdata directory:
// testdata/src/<importpath>/*.go. Fixture packages may import each other by
// that import path and may import the standard library, which is
// type-checked from GOROOT source (CGO_ENABLED=0 file set, so no compiled
// artifacts are needed).
//
// A want comment names one expected diagnostic on its own line:
//
//	c.read = m // want `storing frame-aliasing wire data`
//
// Several quoted regexps on one line expect several diagnostics. Suppression
// directives (//lint:allow) are honored exactly as in production, so
// fixtures exercise the allowed cases and the unused-suppression report
// (analyzer name "lint") too.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"c3/internal/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads each fixture package, applies the analyzer, and reports
// mismatches between produced findings and want comments as test errors.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	l := newLoader(dir)
	for _, pkgPath := range pkgs {
		tp, fx, err := l.load(pkgPath, dir)
		if err != nil {
			t.Errorf("loading fixture %s: %v", pkgPath, err)
			continue
		}
		if fx == nil {
			t.Errorf("fixture %s resolved outside testdata/src", pkgPath)
			continue
		}
		findings, err := analysis.RunPackage(l.fset, fx.files, tp, fx.info, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, pkgPath, err)
			continue
		}
		checkWants(t, l.fset, fx.files, findings)
	}
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, findings []analysis.Finding) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(text, "want")
				for {
					rest = strings.TrimSpace(rest)
					if rest == "" {
						break
					}
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Errorf("%s: malformed want comment %q", pos, c.Text)
						break
					}
					rest = rest[len(q):]
					unq, _ := strconv.Unquote(q)
					re, err := regexp.Compile(unq)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, unq, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: unq})
				}
			}
		}
	}
	for _, f := range findings {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.raw)
		}
	}
}

// fixturePkg keeps the syntax and type info of an analyzed fixture package
// (standard-library dependencies are type-checked but not retained).
type fixturePkg struct {
	files []*ast.File
	info  *types.Info
}

type loader struct {
	fset *token.FileSet
	ctx  build.Context
	dir  string // testdata root
	pkgs map[string]*types.Package
	fix  map[string]*fixturePkg
}

func newLoader(dir string) *loader {
	ctx := build.Default
	ctx.CgoEnabled = false
	ctx.GOPATH = ""
	return &loader{
		fset: token.NewFileSet(),
		ctx:  ctx,
		dir:  dir,
		pkgs: map[string]*types.Package{"unsafe": types.Unsafe},
		fix:  make(map[string]*fixturePkg),
	}
}

// load type-checks path (recursively loading its imports), returning the
// fixture view when the package came from testdata/src.
func (l *loader) load(path, srcDir string) (*types.Package, *fixturePkg, error) {
	if tp, ok := l.pkgs[path]; ok {
		return tp, l.fix[path], nil
	}
	var files []*ast.File
	var pkgDir string
	if fixDir := filepath.Join(l.dir, "src", filepath.FromSlash(path)); isDir(fixDir) {
		entries, err := os.ReadDir(fixDir)
		if err != nil {
			return nil, nil, err
		}
		pkgDir = fixDir
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			af, err := l.parse(filepath.Join(fixDir, e.Name()))
			if err != nil {
				return nil, nil, err
			}
			files = append(files, af)
		}
	} else {
		bp, err := l.ctx.Import(path, srcDir, 0)
		if err != nil {
			// Standard-library vendored dependency (net and friends).
			bp, err = l.ctx.Import("vendor/"+path, srcDir, 0)
			if err != nil {
				return nil, nil, fmt.Errorf("resolving import %q: %v", path, err)
			}
		}
		pkgDir = bp.Dir
		for _, name := range bp.GoFiles {
			af, err := l.parse(filepath.Join(bp.Dir, name))
			if err != nil {
				return nil, nil, err
			}
			files = append(files, af)
		}
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("package %q has no Go files", path)
	}
	info := analysis.NewInfo()
	conf := types.Config{
		Importer: importerFunc(func(imp string) (*types.Package, error) {
			tp, _, err := l.load(imp, pkgDir)
			return tp, err
		}),
		Error: func(error) {}, // tolerate quirks in std source; ours fail below
	}
	tp, err := conf.Check(path, l.fset, files, info)
	isFixture := strings.HasPrefix(pkgDir, filepath.Join(l.dir, "src"))
	if err != nil && isFixture {
		return nil, nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	l.pkgs[path] = tp
	if isFixture {
		l.fix[path] = &fixturePkg{files: files, info: info}
	}
	return tp, l.fix[path], nil
}

func (l *loader) parse(path string) (*ast.File, error) {
	return parser.ParseFile(l.fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
}

func isDir(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
