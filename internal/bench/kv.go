package bench

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"c3/internal/kvstore"
	"c3/internal/obs"
	"c3/internal/resp"
	"c3/internal/sim"
	"c3/internal/stats"
	"c3/internal/workload"
)

// KVResult is the machine-readable record of the live TCP store benchmark —
// the repo's own hot-path trajectory, tracked across PRs in BENCH_kv.json.
type KVResult struct {
	Config        Meta    `json:"config"`
	Nodes         int     `json:"nodes"`
	Shards        int     `json:"shards"`
	Durable       bool    `json:"durable"`
	Workers       int     `json:"workers"`
	Keys          int     `json:"keys"`
	ValueBytes    int     `json:"value_bytes"`
	ReadFraction  float64 `json:"read_fraction"`
	Ops           int     `json:"ops"`
	Seconds       float64 `json:"seconds"`
	ThroughputOps float64 `json:"throughput_ops_per_sec"`
	ReadP50Us     float64 `json:"read_p50_us"`
	ReadP99Us     float64 `json:"read_p99_us"`
	ReadP999Us    float64 `json:"read_p999_us"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	BytesPerOp    float64 `json:"bytes_per_op"`

	// Write-only phase: the same cluster and workers, 100% Puts, run after
	// the mixed phase so the mixed numbers stay comparable across the
	// trajectory. Saturated durable write throughput is the shard-per-core
	// runtime's headline number.
	WriteOps           int     `json:"write_ops"`
	WriteSeconds       float64 `json:"write_seconds"`
	WriteThroughputOps float64 `json:"write_throughput_ops_per_sec"`
	WriteP50Us         float64 `json:"write_p50_us"`
	WriteP99Us         float64 `json:"write_p99_us"`
}

// kvOps reports the live-store operation budget for the scale.
func (o Options) kvOps() int {
	switch o.Scale {
	case Full:
		return 1_000_000
	case Medium:
		return 150_000
	default:
		return 30_000
	}
}

// RunKV drives a loopback cluster with a read-heavy Zipfian workload and
// measures end-to-end throughput, read latency percentiles, and whole-
// process allocation rate (client, coordinators, and replicas share the
// runtime, so allocs/op covers the entire serving path). Read repair is
// disabled so every read costs exactly one coordinator→replica hop.
func RunKV(o Options) (KVResult, error) {
	const (
		nodes        = 3
		workers      = 8
		nKeys        = 512
		valueBytes   = 256
		readFraction = 0.95
	)
	ops := o.kvOps()

	// The hot path runs with durability on: every node gets a WAL-backed
	// store in a scratch directory, so the numbers include group commit
	// and fsync on the write path.
	dataDir, err := os.MkdirTemp("", "c3-kvbench-")
	if err != nil {
		return KVResult{}, err
	}
	defer os.RemoveAll(dataDir)
	cluster, err := kvstore.StartCluster(nodes, kvstore.Config{
		Seed: 1, ReadRepair: -1, DataDir: dataDir, Shards: o.Shards})
	if err != nil {
		return KVResult{}, err
	}
	defer cluster.Close()
	cl, err := kvstore.Dial(cluster.Addrs())
	if err != nil {
		return KVResult{}, err
	}
	defer cl.Close()

	// The RESP gateway and ops endpoint ride along idle on every run: the
	// bench guard's numbers certify that their mere presence (listeners,
	// backend, snapshot closure) does not tax the hot path.
	respLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return KVResult{}, err
	}
	gw := resp.NewServer(cluster.Nodes[0].RESPBackend(kvstore.One))
	go gw.Serve(respLn)
	defer gw.Close()
	obsLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return KVResult{}, err
	}
	n0 := cluster.Nodes[0]
	go obs.Serve(obsLn, obs.Handler(func() any { return n0.StatsSnapshot() }))
	defer obsLn.Close()

	keys := make([]string, nKeys)
	val := make([]byte, valueBytes)
	for i := range val {
		val[i] = byte(i)
	}
	for i := range keys {
		keys[i] = fmt.Sprintf("kvbench-%05d", i)
		if err := cl.Put(keys[i], val); err != nil {
			return KVResult{}, err
		}
	}
	// CL=ONE acks before the fan-out lands everywhere; wait until every key
	// reads back from round-robin coordinators.
	for i := range keys {
		for attempt := 0; ; attempt++ {
			if _, ok, err := cl.Get(keys[i]); err == nil && ok {
				break
			} else if attempt > 200 {
				return KVResult{}, fmt.Errorf("bench: key %q never became readable: %v", keys[i], err)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	perWorker := ops / workers
	zipf := workload.NewScrambled(nKeys, 0.99)
	lat := make([][]float64, workers)
	errs := make([]error, workers)

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := sim.RNG(uint64(o.seeds()), uint64(w)+7)
			samples := make([]float64, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				k := keys[int(zipf.Next(r))%nKeys]
				if r.Float64() < readFraction {
					t0 := time.Now()
					_, ok, err := cl.Get(k)
					d := time.Since(t0)
					if err != nil || !ok {
						errs[w] = fmt.Errorf("bench: Get(%s) ok=%v err=%v", k, ok, err)
						return
					}
					samples = append(samples, float64(d.Nanoseconds())/1e3)
				} else {
					if err := cl.Put(k, val); err != nil {
						errs[w] = err
						return
					}
				}
			}
			lat[w] = samples
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	for _, err := range errs {
		if err != nil {
			return KVResult{}, err
		}
	}

	reads := stats.NewSample(ops)
	for _, s := range lat {
		for _, x := range s {
			reads.Add(x)
		}
	}
	total := perWorker * workers

	// Write-only phase: saturate the write path with the same workers and
	// Zipfian key pattern. Runs after the mixed phase so mixed throughput
	// is measured against the same LSM state as every prior trajectory
	// point.
	writeOps := ops / 3
	writePerWorker := writeOps / workers
	wlat := make([][]float64, workers)
	wstart := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := sim.RNG(uint64(o.seeds()), uint64(w)+31)
			samples := make([]float64, 0, writePerWorker)
			for i := 0; i < writePerWorker; i++ {
				k := keys[int(zipf.Next(r))%nKeys]
				t0 := time.Now()
				if err := cl.Put(k, val); err != nil {
					errs[w] = err
					return
				}
				samples = append(samples, float64(time.Since(t0).Nanoseconds())/1e3)
			}
			wlat[w] = samples
		}(w)
	}
	wg.Wait()
	welapsed := time.Since(wstart)
	for _, err := range errs {
		if err != nil {
			return KVResult{}, err
		}
	}
	writes := stats.NewSample(writeOps)
	for _, s := range wlat {
		for _, x := range s {
			writes.Add(x)
		}
	}
	wtotal := writePerWorker * workers

	return KVResult{
		Config:        o.meta(cluster.Nodes[0].Shards(), SyncPeriodic),
		Nodes:         nodes,
		Shards:        cluster.Nodes[0].Shards(),
		Durable:       true,
		Workers:       workers,
		Keys:          nKeys,
		ValueBytes:    valueBytes,
		ReadFraction:  readFraction,
		Ops:           total,
		Seconds:       elapsed.Seconds(),
		ThroughputOps: float64(total) / elapsed.Seconds(),
		ReadP50Us:     reads.Percentile(50),
		ReadP99Us:     reads.Percentile(99),
		ReadP999Us:    reads.Percentile(99.9),
		AllocsPerOp:   float64(after.Mallocs-before.Mallocs) / float64(total),
		BytesPerOp:    float64(after.TotalAlloc-before.TotalAlloc) / float64(total),

		WriteOps:           wtotal,
		WriteSeconds:       welapsed.Seconds(),
		WriteThroughputOps: float64(wtotal) / welapsed.Seconds(),
		WriteP50Us:         writes.Percentile(50),
		WriteP99Us:         writes.Percentile(99),
	}, nil
}

// writeKVJSON writes the machine-readable record to path.
func writeKVJSON(res KVResult, path string) error {
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return os.WriteFile(path, b, 0o644)
}

// KV is the runner for the live TCP store hot path. With
// Options.KVJSONPath set it also writes the machine-readable record
// (BENCH_kv.json, the repo's benchmark trajectory).
func KV(o Options) *Report {
	r := newReport("kv", "live TCP store throughput/latency (network hot path)")
	res, err := RunKV(o)
	if err != nil {
		r.fail(err)
		return r
	}
	r.printf("%d nodes (durable=%v), %d workers, %d keys × %dB values, %.0f%% reads, %d ops in %.2fs",
		res.Nodes, res.Durable, res.Workers, res.Keys, res.ValueBytes, res.ReadFraction*100, res.Ops, res.Seconds)
	r.printf("throughput %.0f ops/s; read latency p50 %.0fµs p99 %.0fµs p99.9 %.0fµs; %.1f allocs/op, %.0f B/op",
		res.ThroughputOps, res.ReadP50Us, res.ReadP99Us, res.ReadP999Us, res.AllocsPerOp, res.BytesPerOp)
	r.printf("write-only: %d ops in %.2fs, %.0f ops/s; write latency p50 %.0fµs p99 %.0fµs (shards=%d)",
		res.WriteOps, res.WriteSeconds, res.WriteThroughputOps, res.WriteP50Us, res.WriteP99Us, res.Shards)
	r.Metric("kv_throughput_ops_per_sec", res.ThroughputOps)
	r.Metric("kv_write_throughput_ops_per_sec", res.WriteThroughputOps)
	r.Metric("kv_read_p99_us", res.ReadP99Us)
	r.Metric("kv_allocs_per_op", res.AllocsPerOp)
	if o.KVJSONPath != "" {
		if err := writeKVJSON(res, o.KVJSONPath); err != nil {
			r.printf("write %s: %v", o.KVJSONPath, err)
		} else {
			r.printf("wrote %s", o.KVJSONPath)
		}
	}
	return r
}
