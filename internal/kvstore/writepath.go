package kvstore

import (
	"runtime"
	"sync"
	"unsafe"

	"c3/internal/core"
	"c3/internal/wire"
)

// Shard-per-core request handling.
//
// The node partitions its hot path by the storage shard of each key (the
// same FNV-1a routing the sharded LSM uses, so a key's queue accounting,
// ranker state, and memtable all live on one shard):
//
//   - Writes are event-driven. A coordinated write allocates nothing and
//     spawns nothing in steady state: the serve loop charges a pooled
//     writeGather with one leg per replica, remote legs go out as writeAsync
//     calls completed on their connection's read loop, and the local leg is
//     queued to the key's shard writer. The gather acks the client the
//     moment the consistency level is met, from whichever goroutine
//     delivered the deciding leg.
//   - Each shard runs one writer goroutine draining a queue of writeTasks.
//     The writer batches whatever is pending into a single PutMulti — one
//     memtable lock, one WAL commit group per drain — so pipelined writes
//     against one shard share a group commit while never contending with
//     sibling shards' locks or fsyncs.
//   - Reads dispatch through a small pool of readWorkers via an unbuffered
//     handoff: a parked worker takes the request with zero allocations; if
//     every worker is busy the request falls back to a spawned goroutine,
//     preserving unlimited read concurrency.

// keyBytes views a key's bytes without copying — for ring hashing, which
// never retains its input.
func keyBytes(k string) []byte {
	if len(k) == 0 {
		return nil
	}
	return unsafe.Slice(unsafe.StringData(k), len(k))
}

// pooledString views a pooled buffer's bytes as a string. The caller owns
// the aliasing discipline: the string must not be retained past the
// buffer's recycling (clone it first — see readRace.spawn).
func pooledString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// writeGather is the in-flight state of one coordinated write: counters for
// the replica fan-out and the response route. Legs complete it from
// wherever they resolve — a peer connection's read loop, a shard writer, a
// dial goroutine — and the leg that decides the level encodes and enqueues
// the client's ack. refs releases the pooled value buffer after the last
// leg (hints copy the value synchronously inside complete).
type writeGather struct {
	n    *Node
	cw   *connWriter
	id   uint64
	lvl  Level
	need int

	mu      sync.Mutex
	oks     int
	fails   int
	total   int
	decided bool

	key string
	ver uint64
	val []byte
	del bool
	vb  *[]byte

	// done, when non-nil, routes the decision to a blocked caller (the RESP
	// gateway's synchronous write) instead of encoding onto cw. Buffered(1):
	// the deciding leg never blocks on a slow caller.
	done chan wire.WriteResp

	refs int32 // touched under mu; complete may run from any goroutine
}

var writeGatherPool = sync.Pool{New: func() any { return new(writeGather) }}

// complete resolves one leg of the fan-out. transport marks a leg that never
// reached its replica (connection dead, dial failed): the write is banked as
// a hint toward that replica before the value buffer can be released.
func (g *writeGather) complete(from core.ServerID, ok bool, transport bool) {
	n := g.n
	if transport {
		n.hintWrite(from, wire.WriteReq{Key: g.key, Version: g.ver, Value: g.val, Del: g.del})
	}
	g.mu.Lock()
	decide := 0
	if !g.decided {
		if ok {
			if g.oks++; g.oks >= g.need {
				g.decided, decide = true, 1
			}
		} else if g.fails++; g.fails > g.total-g.need {
			g.decided, decide = true, 2
		}
	}
	oks := g.oks
	g.refs--
	last := g.refs == 0
	cw, id, lvl, done := g.cw, g.id, g.lvl, g.done
	g.mu.Unlock()
	if decide != 0 {
		resp := wire.WriteResp{ID: id, OK: decide == 1, Status: wire.StatusOK, FB: n.feedback()}
		if decide == 2 {
			if oks == 0 {
				n.writeFails.Add(1)
			}
			if lvl != One {
				n.quorumFails.Add(1)
				resp.Status = wire.StatusQuorumUnavailable
			} else {
				resp.Status = wire.StatusWriteFailed
			}
		}
		if done != nil {
			done <- resp
		} else {
			fb := getBuf()
			if b, err := wire.AppendWriteResp((*fb)[:0], resp); err != nil {
				putBuf(fb)
			} else {
				*fb = b
				cw.enqueue(fb)
			}
		}
	}
	if last {
		putBuf(g.vb)
		g.vb, g.val, g.key, g.cw, g.n, g.done = nil, nil, "", nil, nil, nil
		writeGatherPool.Put(g)
	}
}

// launchCoordWrite coordinates a client write without leaving the serve
// loop: stamp, precheck, and dispatch every replica leg, then return — the
// ack is enqueued by whichever leg decides the level. vb is the pooled
// buffer backing m.Value, released by the gather's last leg. Mirrors the
// old blocking coordinateWrite: first genuine success acks ONE, ⌊N/2⌋+1
// QUORUM, all replicas ALL; unreachable replicas' writes are banked as
// hints that never count toward the level; a down replica with a full hint
// queue fails a quorum write deterministically up front.
func (n *Node) launchCoordWrite(cw *connWriter, m wire.WriteReq, vb *[]byte) {
	n.launchWrite(cw, nil, m, vb)
}

// coordinateWriteSync runs a coordinated write and blocks for the decision —
// the RESP gateway's entry point (a RESP reply is synchronous by protocol).
// Ownership of vb (backing m.Value) transfers to the gather exactly as on
// the async path: legs may outlive the decision, so the buffer is released
// by the last leg, not by this return.
func (n *Node) coordinateWriteSync(m wire.WriteReq, vb *[]byte) wire.WriteResp {
	done := make(chan wire.WriteResp, 1)
	n.launchWrite(nil, done, m, vb)
	return <-done
}

// launchWrite is the shared body: exactly one of cw (async ack route) and
// done (synchronous decision route) is non-nil.
func (n *Node) launchWrite(cw *connWriter, done chan wire.WriteResp, m wire.WriteReq, vb *[]byte) {
	var gbuf [8]core.ServerID
	group := n.topo.Load().writeGroup(keyBytes(m.Key), gbuf[:0])
	lvl := Level(m.CL)
	need := 1
	if lvl != One {
		owners := n.topo.Load().readRing().ReplicasFor(keyBytes(m.Key), nil)
		need = lvl.required(len(owners))
		if need > len(group) {
			need = len(group)
		}
		for _, s := range group {
			if s == n.id || !n.hintFull(s) {
				continue
			}
			if _, up := n.peerReady(s); !up {
				n.quorumFails.Add(1)
				putBuf(vb)
				resp := wire.WriteResp{ID: m.ID, Status: wire.StatusQuorumUnavailable, FB: n.feedback()}
				if done != nil {
					done <- resp
					return
				}
				fb := getBuf()
				b, err := wire.AppendWriteResp((*fb)[:0], resp)
				if err != nil {
					putBuf(fb)
					return
				}
				*fb = b
				cw.enqueue(fb)
				return
			}
		}
	}
	m.Version = n.stampVersion()
	g := writeGatherPool.Get().(*writeGather)
	g.n, g.cw, g.id, g.lvl, g.need = n, cw, m.ID, lvl, need
	g.done = done
	g.oks, g.fails, g.decided = 0, 0, false
	g.total, g.refs = len(group), int32(len(group))
	g.key, g.ver, g.val, g.del, g.vb = m.Key, m.Version, m.Value, m.Del, vb
	for _, s := range group {
		if s == n.id {
			t := getWriteTask()
			t.kind = taskGather
			t.key, t.ver, t.val, t.del, t.g = m.Key, m.Version, m.Value, m.Del, g
			n.enqueueWriteTask(n.shardOf(m.Key), t)
			continue
		}
		if p, ok := n.peerReady(s); ok {
			if err := p.writeAsync(m.Key, m.Value, m.Version, m.Del, g, s); err != nil {
				g.complete(s, false, true) // dispatch never started: transport failure
			}
			continue
		}
		// The link needs a dial (or the peer is down): the only leg that can
		// block, so it runs as a goroutine. Its resolution — response, RPC
		// error turned hint — feeds the gather like any other leg.
		s := s
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			out, err := n.rpcWrite(s, m)
			g.complete(s, err == nil && out.OK, err != nil)
		}()
	}
}

// writeTask kinds: a replica-internal write acks its own connection; a
// gather leg reports into its coordinator's writeGather.
const (
	taskInternal uint8 = iota
	taskGather
)

// writeTask is one queued replica-local write bound for a shard's writer.
type writeTask struct {
	kind uint8
	key  string
	ver  uint64
	val  []byte
	del  bool

	// taskInternal: the response route and the pooled buffer backing val.
	cw *connWriter
	id uint64
	vb *[]byte

	// taskGather: the coordinator-side gather owning val's buffer.
	g *writeGather
}

var writeTaskPool = sync.Pool{New: func() any { return new(writeTask) }}

func getWriteTask() *writeTask { return writeTaskPool.Get().(*writeTask) }

func putWriteTask(t *writeTask) {
	*t = writeTask{}
	writeTaskPool.Put(t)
}

// writeQueueDepth bounds each shard's pending writeTasks; maxApplyBatch
// bounds how many a writer folds into one PutMulti (one WAL commit group).
const (
	writeQueueDepth = 256
	maxApplyBatch   = 64
)

// enqueueWriteTask hands t to shard sh's writer. When the queue is full the
// task falls back to a spawned goroutine applying directly against the
// shard — backpressure without ever blocking the serve loop.
func (n *Node) enqueueWriteTask(sh int, t *writeTask) {
	select {
	case n.st[sh].wq <- t:
	default:
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.applyDirect(sh, t)
		}()
	}
}

// applyDirect applies one task bypassing the shard writer (queue-overflow
// fallback): same store, same version guard, just without the batch fold.
func (n *Node) applyDirect(sh int, t *writeTask) {
	var err error
	if n.dropWrites.Load() {
		err = errWriteDropped
	} else if t.del {
		_, err = n.store.Shard(sh).DeleteVersioned(t.key, t.ver)
	} else if t.ver != 0 {
		_, err = n.store.Shard(sh).PutVersioned(t.key, t.ver, t.val)
	} else {
		err = n.store.Shard(sh).Put(t.key, t.val)
	}
	n.finishWriteTask(sh, t, err)
}

// writeWorker is shard sh's writer goroutine: it drains pending tasks and
// applies them as one PutMulti — a single memtable lock acquisition and one
// WAL commit group per drain — then completes each task. Unrelated shards'
// writers never share a lock or an fsync group.
func (n *Node) writeWorker(sh int) {
	defer n.wg.Done()
	q := n.st[sh].wq
	shard := n.store.Shard(sh)
	tasks := make([]*writeTask, 0, maxApplyBatch)
	keys := make([]string, 0, maxApplyBatch)
	vers := make([]uint64, 0, maxApplyBatch)
	vals := make([][]byte, 0, maxApplyBatch)
	dels := make([]bool, 0, maxApplyBatch)
	for {
		var t *writeTask
		select {
		case t = <-q:
		case <-n.closed:
			for {
				select {
				case t := <-q:
					n.finishWriteTask(sh, t, errClosed)
				default:
					return
				}
			}
		}
		tasks = append(tasks[:0], t)
		yielded := false
	fold:
		for len(tasks) < maxApplyBatch {
			select {
			case t2 := <-q:
				tasks = append(tasks, t2)
			default:
				// Yield once before committing the fold: a runnable handler
				// about to enqueue gets to run now and its task joins this
				// commit group instead of paying its own WAL write. Bounded
				// to one yield per drain so a steady producer stream cannot
				// postpone the commit indefinitely.
				if yielded {
					break fold
				}
				yielded = true
				runtime.Gosched()
			}
		}
		keys, vers, vals, dels = keys[:0], vers[:0], vals[:0], dels[:0]
		anyDel := false
		for _, t := range tasks {
			keys = append(keys, t.key)
			vers = append(vers, t.ver)
			vals = append(vals, t.val)
			dels = append(dels, t.del)
			anyDel = anyDel || t.del
		}
		var err error
		if n.dropWrites.Load() {
			err = errWriteDropped
		} else if anyDel {
			err = shard.ApplyMulti(keys, vers, vals, dels)
		} else {
			err = shard.PutMulti(keys, vers, vals)
		}
		for i, t := range tasks {
			n.finishWriteTask(sh, t, err)
			tasks[i] = nil
		}
	}
}

// finishWriteTask completes one applied (or failed) task: an internal write
// acks its peer and recycles its value buffer; a gather leg reports into
// its coordinator's gather (which owns the buffer).
func (n *Node) finishWriteTask(sh int, t *writeTask, err error) {
	switch t.kind {
	case taskGather:
		g := t.g
		putWriteTask(t)
		g.complete(n.id, err == nil, false)
	default:
		cw, id, vb := t.cw, t.id, t.vb
		putWriteTask(t)
		putBuf(vb)
		fb := getBuf()
		b, encErr := wire.AppendWriteResp((*fb)[:0], wire.WriteResp{
			ID: id, OK: err == nil, FB: n.feedbackAt(sh)})
		if encErr != nil {
			putBuf(fb)
			return
		}
		*fb = b
		cw.enqueue(fb)
	}
}

// readTask is one coordinated client read handed to a read worker. kb, when
// non-nil, is the pooled buffer whose bytes back m.Key (recycled after the
// read resolves; escalation paths clone first).
type readTask struct {
	cw *connWriter
	m  wire.ReadReq
	kb *[]byte
}

var readTaskPool = sync.Pool{New: func() any { return new(readTask) }}

func getReadTask() *readTask { return readTaskPool.Get().(*readTask) }

func putReadTask(t *readTask) {
	*t = readTask{}
	readTaskPool.Put(t)
}

// dispatchRead hands a coordinated read to a parked worker — an unbuffered
// rendezvous, so a successful send means a worker took it with zero
// allocations — falling back to a spawned goroutine when every worker is
// busy, which keeps read concurrency unlimited. The caller has already
// added the task to n.wg.
func (n *Node) dispatchRead(t *readTask) {
	select {
	case n.readq <- t:
	default:
		go n.runReadTask(t)
	}
}

// runReadTask resolves one coordinated read and recycles its task state.
func (n *Node) runReadTask(t *readTask) {
	defer n.wg.Done()
	n.respondCoordRead(t.cw, t.m)
	if t.kb != nil {
		putBuf(t.kb)
	}
	putReadTask(t)
}

// readWorker serves coordinated reads handed off by dispatchRead. Workers
// exist to make the steady-state read allocation-free (a parked worker
// replaces a go-statement's closure); they are not a concurrency bound —
// dispatchRead overflows to plain goroutines.
func (n *Node) readWorker() {
	defer n.wg.Done()
	for {
		select {
		case t := <-n.readq:
			n.respondCoordRead(t.cw, t.m)
			if t.kb != nil {
				putBuf(t.kb)
			}
			putReadTask(t)
			n.wg.Done()
		case <-n.closed:
			return
		}
	}
}

// readWorkerCount sizes the worker pool: enough parked workers that a
// moderately concurrent client sees rendezvous handoffs, scaled with the
// shard count.
func readWorkerCount(shards int) int {
	if w := 2 * shards; w > 8 {
		return w
	}
	return 8
}
