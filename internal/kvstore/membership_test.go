package kvstore

import (
	"fmt"
	"net"
	"testing"
	"time"

	"c3/internal/core"
	"c3/internal/wire"
)

// waitForEpoch polls until every node has adopted at least epoch e.
func waitForEpoch(t *testing.T, nodes []*Node, e uint64, deadline time.Duration) {
	t.Helper()
	end := time.Now().Add(deadline)
	for {
		behind := -1
		for i, n := range nodes {
			if n != nil && n.Epoch() < e {
				behind = i
				break
			}
		}
		if behind < 0 {
			return
		}
		if time.Now().After(end) {
			t.Fatalf("node %d stuck at epoch %d, want ≥ %d", behind, nodes[behind].Epoch(), e)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// loadKeys writes count distinct keys through the client and waits until
// every one is readable (CL=ONE convergence), returning them.
func loadKeys(t *testing.T, cl *Client, prefix string, count int) []string {
	t.Helper()
	keys := make([]string, count)
	for i := range keys {
		keys[i] = fmt.Sprintf("%s-%05d", prefix, i)
		if err := cl.Put(keys[i], []byte("val-"+keys[i])); err != nil {
			t.Fatalf("put %s: %v", keys[i], err)
		}
	}
	for _, k := range keys {
		for attempt := 0; ; attempt++ {
			if _, ok, err := cl.Get(k); err == nil && ok {
				break
			} else if attempt > 300 {
				t.Fatalf("key %q never became readable: %v", k, err)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	return keys
}

// assertAllReadable fails on the first loaded key a MultiGet cannot find.
func assertAllReadable(t *testing.T, cl *Client, keys []string, when string) {
	t.Helper()
	vals, found, err := cl.MultiGet(keys)
	if err != nil {
		t.Fatalf("%s: MultiGet: %v", when, err)
	}
	for i, ok := range found {
		if !ok {
			t.Fatalf("%s: acked key %q lost", when, keys[i])
		}
		if string(vals[i]) != "val-"+keys[i] {
			t.Fatalf("%s: key %q has wrong value %q", when, keys[i], vals[i])
		}
	}
}

// TestLiveJoinStreamsAndServes grows a loaded 4-node cluster by one: the
// joiner must receive the transition topology, stream its owed ranges, cut
// the cluster over to the new stable epoch, keep every acked write readable,
// and start both serving reads and coordinating traffic.
func TestLiveJoinStreamsAndServes(t *testing.T) {
	c, cl := startTestCluster(t, 4, Config{Seed: 61})
	keys := loadKeys(t, cl, "join", 400)

	joined, err := c.Join(Config{Seed: 62})
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if joined.ID() != 4 {
		t.Fatalf("joiner id = %d, want 4", joined.ID())
	}
	// Boot epoch 0 → transition 1 → stable 2, adopted everywhere.
	waitForEpoch(t, c.Nodes, 2, 5*time.Second)
	for _, n := range c.Nodes {
		if n.InTransition() {
			t.Fatalf("node %d still in a dual-route window after activation", n.ID())
		}
		if got := len(n.Members()); got != 5 {
			t.Fatalf("node %d sees %d members, want 5", n.ID(), got)
		}
	}
	assertAllReadable(t, cl, keys, "after join")

	// The joiner must hold every key of the ranges it took over — reads on
	// the new ring route to it with no dual-route safety net left.
	owed := 0
	for _, k := range keys {
		group := joined.readRing().ReplicasFor([]byte(k), nil)
		for _, s := range group {
			if s == joined.id {
				owed++
				if !joined.store.Has(k) {
					t.Fatalf("joiner owns %q but never streamed it", k)
				}
			}
		}
	}
	if owed == 0 {
		t.Fatal("join moved no ranges at all")
	}

	// Traffic after the cutover reaches the joiner's storage.
	for i := 0; i < 2000 && joined.ReadsServed() == 0; i++ {
		if _, _, err := cl.Get(keys[i%len(keys)]); err != nil {
			t.Fatalf("get: %v", err)
		}
	}
	if joined.ReadsServed() == 0 {
		t.Fatal("joiner never served a read after activation")
	}
	settleOutstanding(t, c.Nodes, 5, 3*time.Second)
}

// TestDecommissionRehomesData shrinks a loaded cluster: the leaver streams
// its arcs to the gainers, announces the stable successor epoch, and every
// acked write stays readable once reads cut over to the smaller ring.
func TestDecommissionRehomesData(t *testing.T) {
	c, cl := startTestCluster(t, 5, Config{Seed: 63})
	keys := loadKeys(t, cl, "leave", 400)

	leaver := c.Nodes[4]
	if err := leaver.Decommission(); err != nil {
		t.Fatalf("decommission: %v", err)
	}
	waitForEpoch(t, c.Nodes[:4], 2, 5*time.Second)
	for _, n := range c.Nodes[:4] {
		if got := len(n.Members()); got != 4 {
			t.Fatalf("node %d sees %d members, want 4", n.ID(), got)
		}
		for _, m := range n.Members() {
			if m == leaver.id {
				t.Fatalf("node %d still lists the leaver as a member", n.ID())
			}
		}
	}
	// The leaver no longer receives reads; the data must be whole without it.
	leaver.Close()
	c.Nodes[4] = nil
	assertAllReadable(t, cl, keys, "after decommission")
	settleOutstanding(t, c.Nodes[:4], 5, 3*time.Second)
}

// TestJoinThenDecommissionSameNode pushes a node through its full lifecycle:
// join a live cluster, take traffic, then leave it — the elastic round trip
// the bench drives under load.
func TestJoinThenDecommissionSameNode(t *testing.T) {
	c, cl := startTestCluster(t, 4, Config{Seed: 64})
	keys := loadKeys(t, cl, "cycle", 300)

	joined, err := c.Join(Config{Seed: 65})
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	waitForEpoch(t, c.Nodes, 2, 5*time.Second)
	assertAllReadable(t, cl, keys, "after join")

	if err := joined.Decommission(); err != nil {
		t.Fatalf("decommission: %v", err)
	}
	waitForEpoch(t, c.Nodes[:4], 4, 5*time.Second)
	joined.Close()
	c.Nodes = c.Nodes[:4]
	assertAllReadable(t, cl, keys, "after decommission")
	settleOutstanding(t, c.Nodes, 5, 3*time.Second)
}

// TestJoinRefusedMidTransition: a member occupied by one membership change
// must refuse to admit another (the protocol serializes transitions).
func TestJoinRefusedMidTransition(t *testing.T) {
	c, _ := startTestCluster(t, 3, Config{Seed: 66})
	n := c.Nodes[0]
	// Force an open window by hand: install a join transition without an
	// activation.
	cur := n.topo.Load()
	nv, err := cur.v.AddNode(99)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, 100)
	copy(addrs, cur.addrs)
	addrs[99] = "127.0.0.1:1"
	u := buildUpdate(nv.Epoch(), wire.PhaseJoin, 99, nv, addrs)
	nt, err := topologyFromUpdate(&u)
	if err != nil {
		t.Fatal(err)
	}
	n.memberMu.Lock()
	n.installTopology(nt)
	n.memberMu.Unlock()
	if _, err := JoinCluster(n.Addr(), "127.0.0.1:0", Config{Seed: 67}); err == nil {
		t.Fatal("join admitted during an open transition window")
	}
}

// TestAbortedJoinUnblocksMembership: a join whose catch-up streaming fails
// must roll the fleet back to the pre-join ring at a fresh stable epoch —
// otherwise the transition window (and the dual-route write fan toward the
// dead joiner) would wedge every future membership change. The failure is
// staged through the real admission path: the seed installs and broadcasts
// the PhaseJoin window, the joiner node comes up, and then — standing in
// for a catch-up error — aborts instead of activating.
func TestAbortedJoinUnblocksMembership(t *testing.T) {
	c, _ := startTestCluster(t, 4, Config{Seed: 71})
	seed := c.Nodes[0]

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	u, err := seed.admitJoiner(ln.Addr().String())
	if err != nil {
		ln.Close()
		t.Fatalf("admitJoiner: %v", err)
	}
	nt, err := topologyFromUpdate(&u)
	if err != nil {
		ln.Close()
		t.Fatal(err)
	}
	joiner, err := newNode(core.ServerID(u.Subject), nt, ln, Config{Seed: 72}.withDefaults())
	if err != nil {
		t.Fatalf("newNode: %v", err)
	}
	for _, n := range c.Nodes {
		if !n.InTransition() {
			t.Fatalf("node %d not in the join window after admission", n.ID())
		}
	}

	joiner.abortJoin()
	joiner.Close()
	waitForEpoch(t, c.Nodes, 2, 3*time.Second)
	for _, n := range c.Nodes {
		if n.InTransition() {
			t.Fatalf("node %d still wedged after the join aborted", n.ID())
		}
		if got := len(n.Members()); got != 4 {
			t.Fatalf("node %d sees %d members after abort, want the pre-join 4", n.ID(), got)
		}
	}
	// Membership must be admissible again: a fresh join succeeds end to end.
	if _, err := c.Join(Config{Seed: 73}); err != nil {
		t.Fatalf("join after abort: %v", err)
	}
}

// TestStreamPushDoesNotClobberNewerValue: the decommission push path applies
// pages under the version guard — a pre-move value must never overwrite a
// newer dual-routed write already on the gainer.
func TestStreamPushDoesNotClobberNewerValue(t *testing.T) {
	c, _ := startTestCluster(t, 3, Config{Seed: 73})
	target := c.Nodes[1]
	target.store.Put("hot", []byte("new"))

	p, err := c.Nodes[0].peer(target.id)
	if err != nil {
		t.Fatal(err)
	}
	oks, _, _, err := p.batchWrite(wire.MsgStreamPush, 0, 0, []string{"hot", "cold"},
		[][]byte{[]byte("stale"), []byte("cold-v")}, nil)
	if err != nil || len(oks) != 2 || !oks[0] || !oks[1] {
		t.Fatalf("stream push: oks=%v err=%v", oks, err)
	}
	if v, _ := target.store.Get("hot"); string(v) != "new" {
		t.Fatalf("stream push clobbered newer value: %q", v)
	}
	if v, ok := target.store.Get("cold"); !ok || string(v) != "cold-v" {
		t.Fatalf("stream push dropped an absent key: %q ok=%v", v, ok)
	}
}

// TestRingUpdateAdoptionIsMonotonic: a stale announcement must not roll a
// node back, and the ack carries the node's (newer) epoch.
func TestRingUpdateAdoptionIsMonotonic(t *testing.T) {
	c, _ := startTestCluster(t, 3, Config{Seed: 68})
	n := c.Nodes[0]
	cur := n.topo.Load()
	stale := cur.update // epoch 0, already adopted
	if got := n.adoptUpdate(&stale); got != cur.epoch() {
		t.Fatalf("stale adoption changed epoch to %d", got)
	}
	if n.topo.Load() != cur {
		t.Fatal("stale announcement replaced the topology snapshot")
	}
}
