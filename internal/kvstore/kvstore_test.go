package kvstore

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"c3/internal/sim"
	"c3/internal/workload"
)

func startTestCluster(t *testing.T, n int, cfg Config) (*Cluster, *Client) {
	t.Helper()
	c, err := StartCluster(n, cfg)
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	t.Cleanup(c.Close)
	cl, err := Dial(c.Addrs())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(cl.Close)
	return c, cl
}

func TestPutGetThroughAnyCoordinator(t *testing.T) {
	_, cl := startTestCluster(t, 5, Config{Seed: 1})
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		if err := cl.Put(key, []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatalf("Put(%s): %v", key, err)
		}
	}
	// Round-robin coordinators: every read may land on a different node,
	// yet must find the value (RF=3, write fan-out to all replicas).
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		// Writes ack on the first replica (CL=ONE); give laggards a
		// moment, then retry once for robustness.
		var ok bool
		var val []byte
		var err error
		for attempt := 0; attempt < 20; attempt++ {
			val, ok, err = cl.Get(key)
			if err != nil {
				t.Fatalf("Get(%s): %v", key, err)
			}
			if ok {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if !ok || string(val) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("Get(%s) = %q, %v", key, val, ok)
		}
	}
}

func TestMissingKey(t *testing.T) {
	_, cl := startTestCluster(t, 3, Config{Seed: 2})
	_, ok, err := cl.Get("never-written")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("missing key reported found")
	}
}

func TestAllStrategiesServe(t *testing.T) {
	for _, st := range []string{StratC3, StratLOR, StratRR, StratRND} {
		st := st
		t.Run(st, func(t *testing.T) {
			_, cl := startTestCluster(t, 4, Config{Seed: 3, Strategy: st})
			if err := cl.Put("k", []byte("v")); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 20; i++ {
				if _, _, err := cl.Get("k"); err != nil {
					t.Fatalf("get %d: %v", i, err)
				}
			}
		})
	}
}

func TestConcurrentClients(t *testing.T) {
	c, cl := startTestCluster(t, 5, Config{Seed: 4})
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i)
				if err := cl.Put(key, []byte("v")); err != nil {
					errs <- err
					return
				}
				if _, _, err := cl.Get(key); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Reads must have been coordinated across multiple nodes.
	coords := 0
	for _, n := range c.Nodes {
		if n.ReadsCoordinated() > 0 {
			coords++
		}
	}
	if coords < 2 {
		t.Fatalf("only %d nodes coordinated reads", coords)
	}
}

func TestReplicaSelectionSpreadsReads(t *testing.T) {
	c, cl := startTestCluster(t, 5, Config{Seed: 5})
	key := "hot-key"
	if err := cl.Put(key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the write fan-out settle
	for i := 0; i < 300; i++ {
		if _, _, err := cl.Get(key); err != nil {
			t.Fatal(err)
		}
	}
	// Exactly the RF=3 replicas of the key should have served reads,
	// and more than one of them (C3 explores, then spreads).
	servers := 0
	total := uint64(0)
	for _, n := range c.Nodes {
		if s := n.ReadsServed(); s > 0 {
			servers++
			total += s
		}
	}
	if total < 300 {
		t.Fatalf("served %d reads, want ≥ 300", total)
	}
	if servers < 2 || servers > 3 {
		t.Fatalf("reads served by %d nodes, want 2–3 (the replica set)", servers)
	}
}

func TestC3AvoidsSlowedReplica(t *testing.T) {
	// The live-system headline: degrade one replica and C3 must shift
	// read traffic to the other two — the TCP analogue of Fig. 13.
	cfg := Config{Seed: 6, ReadDelayMean: 200 * time.Microsecond}
	c, cl := startTestCluster(t, 3, cfg) // RF=3: every node replicates every key
	for i := 0; i < 20; i++ {
		if err := cl.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	warm := func(rounds int) {
		r := sim.RNG(1, 1)
		for i := 0; i < rounds; i++ {
			cl.Get(fmt.Sprintf("k%d", r.IntN(20)))
		}
	}
	warm(200)
	before := make([]uint64, 3)
	for i, n := range c.Nodes {
		before[i] = n.ReadsServed()
	}
	// Degrade node 2 massively.
	c.Nodes[2].SetSlowdown(20 * time.Millisecond)
	warm(400)
	var slowDelta, fastDelta uint64
	for i, n := range c.Nodes {
		d := n.ReadsServed() - before[i]
		if i == 2 {
			slowDelta = d
		} else {
			fastDelta += d
		}
	}
	// The slowed node must receive well under a fair third of the reads.
	if slowDelta*4 > fastDelta {
		t.Fatalf("slowed node still served %d vs %d on healthy nodes", slowDelta, fastDelta)
	}
}

func TestBackpressureEngagesUnderTinyRates(t *testing.T) {
	cfg := Config{Seed: 7}
	cfg.Rate.InitialRate = 0.6
	cfg.Rate.MaxRate = 1
	cfg.BackpressureTimeout = 3 * time.Second
	c, cl := startTestCluster(t, 3, cfg)
	if err := cl.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < 12; i++ {
		if _, _, err := cl.Get("k"); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	waits := uint64(0)
	for _, n := range c.Nodes {
		waits += n.BackpressureWaits()
	}
	if waits == 0 {
		t.Fatalf("no backpressure waits despite 0.6 req/δ limit (took %v)", elapsed)
	}
}

func TestWorkloadDrivenSmoke(t *testing.T) {
	// A miniature YCSB run against the live store.
	_, cl := startTestCluster(t, 5, Config{Seed: 8})
	keys := workload.NewScrambled(200, 0.99)
	mix := workload.ReadHeavy
	r := sim.RNG(9, 9)
	for i := 0; i < 300; i++ {
		k := workload.Key(keys.Next(r))
		if mix.Choose(r) == workload.OpRead {
			if _, _, err := cl.Get(k); err != nil {
				t.Fatalf("get: %v", err)
			}
		} else {
			if err := cl.Put(k, []byte("value")); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
	}
}

func TestNodeCloseIsClean(t *testing.T) {
	c, err := StartCluster(3, Config{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	cl, _ := Dial(c.Addrs())
	cl.Put("k", []byte("v"))
	cl.Close()
	c.Close() // must not hang or panic
	c.Close() // double close must be safe
}

func TestStartNodeBadID(t *testing.T) {
	if _, err := StartNode(5, []string{"127.0.0.1:0"}, Config{}); err == nil {
		t.Fatal("out-of-range node id accepted")
	}
}

func TestClientDialNoAddrs(t *testing.T) {
	if _, err := Dial(nil); err == nil {
		t.Fatal("empty address list accepted")
	}
}

func TestTokenAwareClient(t *testing.T) {
	c, _ := startTestCluster(t, 5, Config{Seed: 14})
	cl, err := DialTokenAware(c.Addrs(), 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("tok-%d", i)
		if err := cl.Put(key, []byte("v")); err != nil {
			t.Fatal(err)
		}
		// Writes ack at the first replica (CL=ONE), which need not be
		// the primary the token-aware read will consult; allow the
		// fan-out a moment to land.
		var val []byte
		var ok bool
		var err error
		for attempt := 0; attempt < 50; attempt++ {
			val, ok, err = cl.Get(key)
			if err != nil {
				t.Fatalf("Get(%s): %v", key, err)
			}
			if ok {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		if !ok || string(val) != "v" {
			t.Fatalf("Get(%s) = %q,%v", key, val, ok)
		}
	}
	// Multiple nodes must have coordinated (keys hash across the ring).
	coords := 0
	for _, n := range c.Nodes {
		if n.ReadsCoordinated() > 0 {
			coords++
		}
	}
	if coords < 2 {
		t.Fatalf("token-aware client used only %d coordinators", coords)
	}
}
