package bench

import (
	"math"

	"c3/internal/core"
	"c3/internal/ratelimit"
)

// Fig01 regenerates the paper's motivating example (Fig. 1): three clients
// each receive a burst of four requests and must split them across two
// servers with service times 4 ms and 10 ms. Under LOR each client, acting
// on purely local information, splits evenly; an ideal allocation compensates
// the slower server with a shorter queue.
func Fig01(o Options) *Report {
	r := newReport("fig1", "LOR vs ideal allocation")
	const (
		clients  = 3
		burst    = 4
		fastMs   = 4.0
		slowMs   = 10.0
		requests = clients * burst
	)
	// LOR: every client sends burst/2 to each server.
	lorFast := float64(clients*burst/2) * fastMs
	lorSlow := float64(clients*burst/2) * slowMs
	lorMax := math.Max(lorFast, lorSlow)
	// Ideal: choose the split k (requests to the fast server) minimizing
	// the makespan.
	bestMax, bestK := math.Inf(1), 0
	for k := 0; k <= requests; k++ {
		m := math.Max(float64(k)*fastMs, float64(requests-k)*slowMs)
		if m < bestMax {
			bestMax, bestK = m, k
		}
	}
	r.printf("burst: %d clients × %d requests over servers {%.0f ms, %.0f ms}",
		clients, burst, fastMs, slowMs)
	r.printf("LOR   : fast server %2d reqs (%.0f ms), slow server %2d reqs (%.0f ms) → max latency %.0f ms",
		requests/2, lorFast, requests/2, lorSlow, lorMax)
	r.printf("ideal : fast server %2d reqs (%.0f ms), slow server %2d reqs (%.0f ms) → max latency %.0f ms",
		bestK, float64(bestK)*fastMs, requests-bestK, float64(requests-bestK)*slowMs, bestMax)
	r.printf("(paper quotes 60 ms vs 32 ms for its illustration; the discrete optimum here is %.0f ms)", bestMax)
	r.Metric("lor_max_ms", lorMax)
	r.Metric("ideal_max_ms", bestMax)
	r.Metric("improvement", lorMax/bestMax)
	return r
}

// Fig04 regenerates the scoring-function comparison (Fig. 4): linear vs
// cubic queue penalties for service times 4 ms and 20 ms, and the queue-size
// crossover at which the fast server stops being preferred.
func Fig04(o Options) *Report {
	r := newReport("fig4", "linear vs cubic scoring")
	fast, slow := 0.004, 0.020
	for _, b := range []float64{1, 3} {
		name := "linear"
		if b == 3 {
			name = "cubic"
		}
		// Queue estimate the fast server may reach before matching the
		// slow server at q̂=20: q_fast = 20 · (slow/fast)^(1/b).
		crossover := 20 * math.Pow(slow/fast, 1/b)
		r.printf("%-6s (b=%.0f): fast server matches slow@q̂=20 at q̂=%.1f", name, b, crossover)
		r.Metric("crossover_b"+itoa(int(b)), crossover)
	}
	r.printf("score samples Ψ(q̂) with R̄=T̄ (pure queue term):")
	for _, q := range []float64{1, 5, 10, 20, 50, 100} {
		r.printf("  q̂=%5.0f  linear: 4ms→%8.2f 20ms→%8.2f   cubic: 4ms→%12.1f 20ms→%12.1f",
			q,
			core.CubicScore(fast, fast, q, 1), core.CubicScore(slow, slow, q, 1),
			core.CubicScore(fast, fast, q, 3), core.CubicScore(slow, slow, q, 3))
	}
	// The paper's claim: the cubic crossover (∛5 ≈ 1.71×) is far smaller
	// than the linear one (5×), so long queues at fast servers are
	// penalized sooner.
	r.Metric("cubic_vs_linear_crossover_ratio",
		r.Metrics["crossover_b1"]/r.Metrics["crossover_b3"])
	return r
}

// Fig05 regenerates the cubic rate-growth curve (Fig. 5) with the paper's
// parameters, labelling the three operating regions.
func Fig05(o Options) *Report {
	r := newReport("fig5", "cubic rate growth curve")
	cfg := ratelimit.DefaultConfig()
	r0 := 10.0
	k := math.Cbrt(cfg.Beta * r0 / cfg.Gamma) // seconds
	r.printf("R0=%.0f req/δ, β=%.1f, γ=%.3g ⇒ inflection K=%.0f ms", r0, cfg.Beta, cfg.Gamma, k*1e3)
	for _, ms := range []int64{0, 10, 25, 50, 75, 100, 125, 150, 175, 200} {
		v := ratelimit.CurveAt(cfg, r0, ms*1e6)
		region := "low-rate (steep recovery)"
		switch {
		case float64(ms) > k*1e3*1.4:
			region = "optimistic probing"
		case float64(ms) > k*1e3*0.5:
			region = "saddle"
		}
		r.printf("  ΔT=%3d ms  rate=%7.2f  [%s]", ms, v, region)
	}
	atZero := ratelimit.CurveAt(cfg, r0, 0)
	atK := ratelimit.CurveAt(cfg, r0, int64(k*1e9))
	at2K := ratelimit.CurveAt(cfg, r0, int64(2*k*1e9))
	r.Metric("curve_at_zero", atZero)
	r.Metric("curve_at_saddle", atK)
	r.Metric("curve_at_2x_saddle", at2K)
	return r
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
