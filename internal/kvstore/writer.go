package kvstore

import (
	"errors"
	"net"
	"runtime"
	"sync"

	"c3/internal/wire"
)

// bufRetainCap bounds the capacity of buffers returned to the pool; one huge
// value must not permanently inflate pooled memory. It matches
// wire.MaxRetainedBuffer so both sides of a connection retain the same
// footprint.
const bufRetainCap = wire.MaxRetainedBuffer

// bufPool recycles encoded-frame and value-staging buffers across
// connections and requests. Buffers travel as *[]byte so re-pooling does not
// re-box the slice header.
var bufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4096); return &b },
}

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(b *[]byte) {
	if b == nil || cap(*b) > bufRetainCap {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

var errWriterClosed = errors.New("kvstore: connection writer closed")

// connWriter owns the send half of one TCP connection. Handlers enqueue
// pre-encoded frames (pooled buffers built with wire.Append*); a single
// writer goroutine drains the queue, buffering every queued frame and
// flushing only once nothing is left to coalesce — under load many frames
// share one write syscall, the same outbound-socket coalescing Cassandra
// applies on its request path (§4).
type connWriter struct {
	conn net.Conn
	w    *wire.Writer

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*[]byte // frames awaiting the writer goroutine
	spare  []*[]byte // drained batch, swapped back in to avoid reallocating
	err    error     // first write error; sticky
	closed bool

	done chan struct{} // closed when loop exits
}

// newConnWriter wraps conn. The caller must start loop in a goroutine (kept
// explicit so servers can account it in their WaitGroups).
func newConnWriter(conn net.Conn) *connWriter {
	cw := &connWriter{conn: conn, w: wire.NewWriter(conn), done: make(chan struct{})}
	cw.cond = sync.NewCond(&cw.mu)
	return cw
}

// enqueue hands a pooled frame to the writer goroutine, which assumes
// ownership. On failure the frame is recycled here and the connection's
// write error is returned.
func (cw *connWriter) enqueue(frame *[]byte) error {
	cw.mu.Lock()
	if cw.err != nil || cw.closed {
		err := cw.err
		cw.mu.Unlock()
		putBuf(frame)
		if err == nil {
			err = errWriterClosed
		}
		return err
	}
	cw.queue = append(cw.queue, frame)
	cw.mu.Unlock()
	cw.cond.Signal()
	return nil
}

// loop is the writer goroutine body: write every queued frame, and flush
// only when the queue has gone empty — one flush covers every frame that
// arrived during the previous write. On a write error it severs the
// connection (unblocking the read side) and discards further frames.
func (cw *connWriter) loop() {
	defer close(cw.done)
	yielded := false
	cw.mu.Lock()
	for {
		for len(cw.queue) == 0 && cw.err == nil && !cw.closed {
			cw.cond.Wait()
		}
		if cw.err != nil || (cw.closed && len(cw.queue) == 0) {
			for i, f := range cw.queue {
				putBuf(f)
				cw.queue[i] = nil
			}
			cw.queue = cw.queue[:0]
			cw.mu.Unlock()
			return
		}
		batch := cw.queue
		cw.queue = cw.spare[:0]
		cw.mu.Unlock()

		var err error
		for i, f := range batch {
			if err == nil {
				err = cw.w.WriteRaw(*f)
			}
			putBuf(f)
			batch[i] = nil
		}

		cw.mu.Lock()
		cw.spare = batch[:0]
		if err != nil {
			cw.fail(err)
			continue
		}
		if len(cw.queue) != 0 || cw.w.Buffered() == 0 {
			continue // more to coalesce before paying the flush
		}
		if !yielded {
			// Yield once before paying the flush syscall: a runnable
			// handler about to enqueue gets to run now and its frame joins
			// this flush. On a saturated box this folds many responses into
			// one write(); idle, the yield returns immediately. Bounded to
			// one yield per flush so a steady producer stream cannot
			// postpone the flush indefinitely.
			yielded = true
			cw.mu.Unlock()
			runtime.Gosched()
			cw.mu.Lock()
			if len(cw.queue) != 0 {
				continue // the yield produced more frames: write them first
			}
		}
		cw.mu.Unlock()
		err = cw.w.Flush()
		yielded = false
		cw.mu.Lock()
		if err != nil {
			cw.fail(err)
		}
	}
}

// fail records the first write error and severs the connection so the read
// side unblocks. Callers hold cw.mu.
func (cw *connWriter) fail(err error) {
	if cw.err == nil {
		cw.err = err
		cw.conn.Close()
	}
}

// sever records err and severs the connection from outside the writer loop.
// Handlers use it when a response cannot be encoded at all (e.g. a batch
// whose values overflow wire.MaxFrame): silently dropping the response would
// leave the peer's pooled call waiting forever, while severing fails it
// fast through the connection-death path.
func (cw *connWriter) sever(err error) {
	cw.mu.Lock()
	cw.fail(err)
	cw.mu.Unlock()
}

// close stops the writer goroutine after it drains already-queued frames and
// waits for it to exit. Safe to call more than once and concurrently.
func (cw *connWriter) close() {
	cw.mu.Lock()
	cw.closed = true
	cw.mu.Unlock()
	cw.cond.Broadcast()
	<-cw.done
}
