package bench

import "testing"

// These tests assert the *shape* of the paper's results — who wins and in
// which direction — at Quick scale with a couple of seeds. Absolute values
// belong to EXPERIMENTS.md; ordering violations here mean the reproduction
// is broken.

func opts() Options { return Options{Scale: Quick, Seeds: 2} }

// shapeTest marks a shape assertion: parallel (the simulations are
// independent) and skipped under -short, where the repo-wide race sweep
// runs every package and a multi-second simulation times the race
// detector's overhead is pure latency. The plain Test step and the
// dedicated CI steps still run them in full.
func shapeTest(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("multi-second simulation; skipped under -short")
	}
	t.Parallel()
}

func TestShapeFig02_DSOscillatesMore(t *testing.T) {
	shapeTest(t)
	rep := Fig02(opts())
	if rep.Metrics["oscillation_DS"] <= rep.Metrics["oscillation_C3"] {
		t.Fatalf("DS should oscillate more than C3: %v", rep.Metrics)
	}
}

func TestShapeFig06_C3ShrinksTailGap(t *testing.T) {
	shapeTest(t)
	rep := Fig06(opts())
	// The headline: p99.9−p50 is larger under DS for the read-heavy mix.
	if rep.Metrics["tailgap_ratio_Read-Heavy"] <= 1.2 {
		t.Fatalf("DS tail gap should exceed C3's by a clear margin: %v",
			rep.Metrics["tailgap_ratio_Read-Heavy"])
	}
}

func TestShapeFig07_C3RaisesThroughput(t *testing.T) {
	shapeTest(t)
	rep := Fig07(opts())
	for _, mix := range []string{"Read-Heavy", "Read-Only", "Update-Heavy"} {
		if rep.Metrics["throughput_gain_pct_"+mix] <= 0 {
			t.Fatalf("C3 should raise throughput for %s: %+v", mix, rep.Metrics)
		}
	}
}

func TestShapeFig08_C3ConditionsLoad(t *testing.T) {
	shapeTest(t)
	rep := Fig08(opts())
	if rep.Metrics["range_ratio_DS_over_C3"] <= 1 {
		t.Fatalf("DS hottest-node load range should exceed C3's: %v", rep.Metrics)
	}
}

func TestShapeFig12_SSDKeepsTheGap(t *testing.T) {
	shapeTest(t)
	rep := Fig12(opts())
	if rep.Metrics["ssd_p999_ratio"] <= 1 {
		t.Fatalf("DS p99.9 should exceed C3's on SSDs too: %v", rep.Metrics)
	}
	if rep.Metrics["ssd_throughput_gain_pct"] <= 0 {
		t.Fatalf("C3 should raise SSD throughput: %v", rep.Metrics)
	}
}

func TestShapeFig13_RateDropsUnderDegradation(t *testing.T) {
	shapeTest(t)
	rep := Fig13(opts())
	if rep.Metrics["srate_degraded"] >= rep.Metrics["srate_healthy"] {
		t.Fatalf("srate toward the degraded node should drop: %v", rep.Metrics)
	}
}

func TestShapeFig14_Orderings(t *testing.T) {
	shapeTest(t)
	rep := Fig14(opts())
	// At T=500ms, 70% utilization: LOR worse than C3, RR worse than LOR,
	// C3 above but within sight of the oracle.
	if rep.Metrics["lor_over_c3_500ms_u70_c150"] <= 1 {
		t.Fatalf("LOR should trail C3 at T=500ms: %v", rep.Metrics)
	}
	if rep.Metrics["rr_over_c3_500ms_u70_c150"] <= rep.Metrics["lor_over_c3_500ms_u70_c150"] {
		t.Fatalf("RR should be the worst performer: %v", rep.Metrics)
	}
	if rep.Metrics["c3_over_ora_500ms_u70_c150"] < 1 {
		t.Fatalf("the oracle should not lose to C3: %v", rep.Metrics)
	}
	// Low utilization: C3 plateaus while LOR keeps degrading.
	if rep.Metrics["c3_late_over_mid_u45_c150"] >= rep.Metrics["lor_late_over_mid_u45_c150"] {
		t.Fatalf("C3 should plateau at low utilization while LOR degrades: %v", rep.Metrics)
	}
}

func TestShapeFig15_SkewDoesNotFlipOrdering(t *testing.T) {
	shapeTest(t)
	rep := Fig15(opts())
	// At mild skew (20% of clients), the hot clients' outstanding counts
	// make C3 behave LOR-like; it must not lose materially. At heavy
	// skew (50%) the paper's clear win must hold.
	if rep.Metrics["lor_over_c3_500ms_s20_c150"] <= 0.85 {
		t.Fatalf("C3 materially behind LOR under 20%% demand skew: %v", rep.Metrics)
	}
	if rep.Metrics["lor_over_c3_500ms_s50_c150"] <= 1 {
		t.Fatalf("C3 should beat LOR under 50%% demand skew: %v", rep.Metrics)
	}
}

func TestShapeAblations(t *testing.T) {
	shapeTest(t)
	comp := AblationConcurrencyComp(opts())
	if comp.Metrics["penalty"] <= 1 {
		t.Fatalf("removing concurrency compensation should hurt: %v", comp.Metrics)
	}
	rate := AblationRateControl(opts())
	if rate.Metrics["p99_RR"] <= rate.Metrics["p99_C3"] {
		t.Fatalf("rate control alone (RR) should trail full C3: %v", rate.Metrics)
	}
	dec := AblationDecreaseRule(opts())
	if dec.Metrics["literal_penalty"] <= 1 {
		t.Fatalf("the literal decrease rule should inflate the tail: %v", dec.Metrics)
	}
}

func TestShapeExtensions(t *testing.T) {
	shapeTest(t)
	tok := ExtTokenAware(opts())
	// Token awareness saves a hop on self-selection but concentrates
	// coordination; it must at least not hurt materially.
	if tok.Metrics["p99_improvement"] <= 0.85 {
		t.Fatalf("token awareness hurt p99 materially: %v", tok.Metrics)
	}
	q := ExtQuorum(opts())
	if q.Metrics["gain_cl2"] >= q.Metrics["gain_cl1"] {
		t.Fatalf("C3's advantage should shrink under quorum reads: gains %v", q.Metrics)
	}
}
