// Fixture shapes are distilled from the PR 7 error-taxonomy call sites in
// internal/kvstore and internal/lsm: sentinel comparisons, error switches,
// and the error-text matching that broke when messages were reworded.
package typederr

import (
	"errors"
	"strings"
)

var (
	ErrQuorumUnavailable = errors.New("kvstore: quorum unavailable")
	ErrTimeout           = errors.New("kvstore: timeout")
	ErrWriteFailed       = errors.New("kvstore: write failed on every replica")
	ErrClosed            = errors.New("lsm: store closed")

	errOther = errors.New("kvstore: something else")
)

func work() error { return nil }

func eqSentinel() bool {
	err := work()
	return err == ErrTimeout // want `comparing ErrTimeout with == breaks on wrapped errors; use errors.Is`
}

func neqSentinel() {
	if err := work(); err != ErrClosed { // want `comparing ErrClosed with != breaks on wrapped errors; use errors.Is`
		return
	}
}

func switchSentinel() int {
	err := work()
	switch err {
	case ErrQuorumUnavailable: // want `switch case compares ErrQuorumUnavailable by identity and breaks on wrapped errors; use errors.Is`
		return 1
	case nil:
		return 0
	}
	return 2
}

func textMatch() bool {
	err := work()
	return err.Error() == "kvstore: timeout" // want `matching on err.Error\(\) text is brittle; use errors.Is with a sentinel`
}

func textContains() bool {
	err := work()
	return strings.Contains(err.Error(), "quorum") // want `matching on err.Error\(\) text is brittle; use errors.Is with a sentinel`
}

// errorsIs is the contract: wrapped sentinels keep matching.
func errorsIs() bool {
	err := work()
	return errors.Is(err, ErrTimeout) || errors.Is(err, ErrQuorumUnavailable)
}

// nilChecks are identity tests against nil, not a sentinel.
func nilChecks() bool {
	err := work()
	if err != nil {
		return false
	}
	return err == nil
}

// nonSentinel: package-level errors outside the taxonomy are out of scope.
func nonSentinel() bool {
	err := work()
	return err == errOther
}

// localShadow: a local that happens to share a sentinel's name is unrelated.
func localShadow() bool {
	ErrTimeout := errors.New("local")
	err := work()
	return err == ErrTimeout
}

// bareIdentity deliberately tests for the unwrapped sentinel itself — the
// multi-classification shape where errors.Is would also match richer
// statuses — and is suppressed with the reason.
func bareIdentity() bool {
	err := work()
	//lint:allow typederr identity test for the bare sentinel; classified statuses are handled above
	return err == ErrWriteFailed
}
