package kvstore

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"time"
)

// benchCluster boots a loopback cluster pre-loaded with nKeys values of
// valSize bytes and returns a connected client. Read repair is disabled so
// the benchmark measures exactly one coordinator→replica hop per read.
func benchCluster(b *testing.B, nodes, nKeys, valSize int) (*Cluster, *Client) {
	return benchClusterCfg(b, nodes, nKeys, valSize, Config{Seed: 42, ReadRepair: -1})
}

func benchClusterCfg(b *testing.B, nodes, nKeys, valSize int, cfg Config) (*Cluster, *Client) {
	b.Helper()
	c, err := StartCluster(nodes, cfg)
	if err != nil {
		b.Fatalf("StartCluster: %v", err)
	}
	b.Cleanup(c.Close)
	cl, err := Dial(c.Addrs())
	if err != nil {
		b.Fatalf("Dial: %v", err)
	}
	b.Cleanup(cl.Close)
	val := make([]byte, valSize)
	for i := range val {
		val[i] = byte(i)
	}
	for i := 0; i < nKeys; i++ {
		if err := cl.Put(benchKey(i), val); err != nil {
			b.Fatalf("Put: %v", err)
		}
	}
	// Writes ack at CL=ONE; let the fan-out land everywhere before reading.
	time.Sleep(50 * time.Millisecond)
	for i := 0; i < nKeys; i++ {
		for attempt := 0; ; attempt++ {
			if _, ok, err := cl.Get(benchKey(i)); err == nil && ok {
				break
			} else if attempt > 100 {
				b.Fatalf("warm Get(%s): ok=%v err=%v", benchKey(i), ok, err)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	return c, cl
}

func benchKey(i int) string { return fmt.Sprintf("bench-key-%04d", i) }

// benchKeys pre-renders key names so the measured loop does not charge
// fmt.Sprintf allocations to the store.
func benchKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = benchKey(i)
	}
	return keys
}

// BenchmarkClusterRead is the end-to-end hot path: parallel client reads over
// loopback TCP through round-robin coordinators that forward to C3-ranked
// replicas. allocs/op covers the whole in-process cluster (client, all
// coordinators, all replicas share the runtime).
func BenchmarkClusterRead(b *testing.B) {
	const nKeys = 256
	_, cl := benchCluster(b, 3, nKeys, 128)
	keys := benchKeys(nKeys)
	b.SetBytes(128)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := rand.New(rand.NewPCG(rand.Uint64(), rand.Uint64()))
		for pb.Next() {
			if _, ok, err := cl.Get(keys[r.IntN(nKeys)]); err != nil || !ok {
				b.Errorf("Get: ok=%v err=%v", ok, err)
				return
			}
		}
	})
}

// BenchmarkClusterReadDurable is BenchmarkClusterRead over WAL-backed nodes:
// the point-read fast path must keep its allocation budget (≤3 allocs/op,
// enforced by TestClusterReadAllocBudget) with durability enabled — reads
// never touch the WAL, and flushed runs serve from the retained SST data
// section, not the file.
func BenchmarkClusterReadDurable(b *testing.B) {
	const nKeys = 256
	_, cl := benchClusterCfg(b, 3, nKeys, 128,
		Config{Seed: 42, ReadRepair: -1, DataDir: b.TempDir()})
	keys := benchKeys(nKeys)
	b.SetBytes(128)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := rand.New(rand.NewPCG(rand.Uint64(), rand.Uint64()))
		for pb.Next() {
			if _, ok, err := cl.Get(keys[r.IntN(nKeys)]); err != nil || !ok {
				b.Errorf("Get: ok=%v err=%v", ok, err)
				return
			}
		}
	})
}

// BenchmarkClusterReadSerial measures single-stream round-trip latency
// (one in-flight request; no coalescing opportunity — the worst case for a
// batched flush path).
func BenchmarkClusterReadSerial(b *testing.B) {
	const nKeys = 64
	_, cl := benchCluster(b, 3, nKeys, 128)
	keys := benchKeys(nKeys)
	b.SetBytes(128)
	b.ReportAllocs()
	b.ResetTimer()
	r := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < b.N; i++ {
		if _, ok, err := cl.Get(keys[r.IntN(nKeys)]); err != nil || !ok {
			b.Fatalf("Get: ok=%v err=%v", ok, err)
		}
	}
}

// BenchmarkClusterMultiGet measures the scatter-gather batch read path: one
// client RPC per 64-key batch, coalesced per-replica sub-batches, per-key
// results. Per-key cost (the reported op is one key) must stay below the
// single-Get path — the point of batching.
func BenchmarkClusterMultiGet(b *testing.B) {
	const nKeys = 256
	const batch = 64
	_, cl := benchCluster(b, 3, nKeys, 128)
	keys := benchKeys(nKeys)
	b.SetBytes(128)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := rand.New(rand.NewPCG(rand.Uint64(), rand.Uint64()))
		req := make([]string, batch)
		for {
			for i := range req {
				req[i] = keys[r.IntN(nKeys)]
			}
			vals, found, err := cl.MultiGet(req)
			if err != nil {
				b.Errorf("MultiGet: %v", err)
				return
			}
			for i := range req {
				if !found[i] || len(vals[i]) != 128 {
					b.Errorf("key %s: found=%v len=%d", req[i], found[i], len(vals[i]))
					return
				}
				if !pb.Next() {
					return
				}
			}
		}
	})
}

// BenchmarkClusterWrite measures the CL=ONE write fan-out path.
func BenchmarkClusterWrite(b *testing.B) {
	const nKeys = 256
	_, cl := benchCluster(b, 3, nKeys, 128)
	keys := benchKeys(nKeys)
	val := make([]byte, 128)
	b.SetBytes(128)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := rand.New(rand.NewPCG(rand.Uint64(), rand.Uint64()))
		for pb.Next() {
			if err := cl.Put(keys[r.IntN(nKeys)], val); err != nil {
				b.Errorf("Put: %v", err)
				return
			}
		}
	})
}
