// Package cassim is the §5 evaluation substrate: a discrete-event model of
// the paper's 15-node Cassandra cluster on EC2. It reproduces the read path
// the paper instruments — YCSB-style closed-loop generators, coordinators
// performing replica selection (Dynamic Snitching or C3), RF=3 replication
// over a Murmur3 token ring, read repair, an LSM-flavoured storage service
// time model (page-cache hits, disk seeks, compaction I/O interference), GC
// pauses, gossiped iowait, and optional speculative retries.
//
// The paper ran this on m1.xlarge instances; here the same mechanisms run
// under virtual time (see DESIGN.md §3 for the substitution argument). All
// of Figures 2 and 6–13 regenerate from this package.
package cassim

import (
	"math/rand/v2"
	"time"

	"c3/internal/core"
	"c3/internal/ratelimit"
	"c3/internal/ring"
	"c3/internal/sim"
	"c3/internal/stats"
	"c3/internal/workload"
)

// Strategy names.
const (
	StratC3     = "C3"
	StratDS     = "DS"      // Dynamic Snitching
	StratDSSpec = "DS-SPEC" // Dynamic Snitching + speculative retries
	StratC3Spec = "C3-SPEC" // extension (§7): request reissues atop C3
	StratLOR    = "LOR"
	StratRR     = "RR"
)

// Disk selects the storage latency profile.
type Disk int

// Disk kinds: the paper's RAID0 of spinning ephemeral disks (m1.xlarge) and
// the SSD-backed m3.xlarge variant (Fig. 12).
const (
	Spinning Disk = iota
	SSD
)

func (d Disk) String() string {
	if d == SSD {
		return "ssd"
	}
	return "spinning"
}

// Phase adds generators to the run at a point in time (Fig. 11's dynamic
// workload experiment starts 80 read-heavy generators at t=0 and 40
// update-heavy generators later).
type Phase struct {
	Start      time.Duration
	Generators int
	Mix        workload.Mix
}

// Slowdown artificially inflates one node's service times during a window —
// the simulator's stand-in for the paper's Linux tc latency injection in the
// Fig. 13 trace experiment.
type Slowdown struct {
	Node     int
	From, To time.Duration
	Factor   float64
}

// Config parameterizes a cluster run. Zero fields take the paper's §5 values.
type Config struct {
	Strategy   string
	Nodes      int // 15
	RF         int // 3
	Generators int // 120 (three YCSB instances × 40 threads)
	Mix        workload.Mix
	Keys       uint64         // 10 million
	Sizer      workload.Sizer // 1 KB records by default
	Ops        int            // operations to run (paper: 10M per measurement)
	Disk       Disk
	Seed       uint64

	NetOneWay       time.Duration // 250 µs
	ReadRepair      float64       // 0.1
	ReadSlots       int           // read-stage concurrency per node (4)
	WriteSlots      int           // write-stage concurrency per node (4)
	CacheMissProb   float64       // probability a read needs disk
	CPUMean         time.Duration // mean CPU cost of a read
	SeekMean        time.Duration // mean disk time per uncached read
	WriteMean       time.Duration // mean memtable write cost
	SizeCostPerKB   time.Duration // extra service time per KB of record
	BaseIOWait      float64       // iowait at rest
	IOWaitJitter    float64       // uniform jitter added per gossip tick
	GossipInterval  time.Duration // 1 s, as in Cassandra
	GCMeanInterval  time.Duration // mean time between GC pauses per node
	GCMinPause      time.Duration
	GCMaxPause      time.Duration
	CompactInterval time.Duration // mean time between compactions per node
	CompactDuration time.Duration
	CompactIOFactor float64 // disk-time multiplier while compacting
	CompactIOWait   float64 // gossiped iowait while compacting

	// Duration, when nonzero, ends the run on the virtual clock instead
	// of an operation budget.
	Duration time.Duration
	// Phases overrides Generators/Mix with a staged generator schedule.
	Phases []Phase
	// Slowdowns inject service-time inflation windows (Fig. 13).
	Slowdowns []Slowdown
	// RecordTimeline captures (t, latency) points for every read.
	RecordTimeline bool
	// TraceRates samples every coordinator's srate/rrate toward
	// TraceTarget each 100 ms and records backpressure events (Fig. 13).
	TraceRates  bool
	TraceTarget int

	// Rate overrides the C3 rate-controller parameters.
	Rate ratelimit.Config
	// SpecRetryQuantile is the wait quantile for DS-SPEC (default 99).
	SpecRetryQuantile float64
	// SnitchHistory bounds the per-peer latency sample window of the
	// Dynamic Snitch (default 32 — short enough that interval recomputes
	// react to the previous interval's herd, which is the §2.3
	// oscillation mechanism).
	SnitchHistory int

	// TokenAware routes each generator request to a coordinator that is
	// itself a replica of the key — the Astyanax-style client the paper's
	// §7 names as future work ("which will avoid the problem of clients
	// selecting overloaded coordinators").
	TokenAware bool
	// ReadConsistency is the number of replica responses a read needs
	// (default 1). Setting 2 with RF=3 models the §7 strongly-consistent
	// quorum-read discussion: the coordinator reads from the
	// ReadConsistency best-ranked replicas and completes at the slowest
	// of them.
	ReadConsistency int
}

// DefaultConfig returns the paper's §5 setup (read-heavy on spinning disks).
func DefaultConfig() Config {
	return Config{
		Strategy:      StratC3,
		Nodes:         15,
		RF:            3,
		Generators:    120,
		Mix:           workload.ReadHeavy,
		Keys:          10_000_000,
		Sizer:         workload.FixedSize(1024),
		Ops:           200_000,
		Disk:          Spinning,
		NetOneWay:     250 * time.Microsecond,
		ReadRepair:    0.1,
		ReadSlots:     4,
		WriteSlots:    4,
		CacheMissProb: 0.35,
		CPUMean:       500 * time.Microsecond,
		// SeekMean is left zero: withDefaults assigns it by disk type
		// (5 ms spinning, 150 µs SSD).
		WriteMean:       200 * time.Microsecond,
		SizeCostPerKB:   100 * time.Microsecond,
		BaseIOWait:      0.03,
		IOWaitJitter:    0.002,
		GossipInterval:  time.Second,
		GCMeanInterval:  12 * time.Second,
		GCMinPause:      50 * time.Millisecond,
		GCMaxPause:      250 * time.Millisecond,
		CompactInterval: 45 * time.Second,
		CompactDuration: 8 * time.Second,
		CompactIOFactor: 3,
		CompactIOWait:   0.5,

		SpecRetryQuantile: 99,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Strategy == "" {
		c.Strategy = d.Strategy
	}
	if c.Nodes <= 0 {
		c.Nodes = d.Nodes
	}
	if c.RF <= 0 {
		c.RF = d.RF
	}
	if c.RF > c.Nodes {
		c.RF = c.Nodes
	}
	if c.Generators <= 0 {
		c.Generators = d.Generators
	}
	if c.Mix.Name == "" {
		c.Mix = d.Mix
	}
	if c.Keys == 0 {
		c.Keys = d.Keys
	}
	if c.Sizer == nil {
		c.Sizer = d.Sizer
	}
	if c.Ops <= 0 && c.Duration <= 0 {
		c.Ops = d.Ops
	}
	if c.NetOneWay <= 0 {
		c.NetOneWay = d.NetOneWay
	}
	if c.ReadRepair < 0 {
		c.ReadRepair = 0
	}
	if c.ReadSlots <= 0 {
		c.ReadSlots = d.ReadSlots
	}
	if c.WriteSlots <= 0 {
		c.WriteSlots = d.WriteSlots
	}
	if c.CacheMissProb <= 0 {
		c.CacheMissProb = d.CacheMissProb
	}
	if c.CPUMean <= 0 {
		c.CPUMean = d.CPUMean
	}
	if c.SeekMean <= 0 {
		if c.Disk == SSD {
			c.SeekMean = 150 * time.Microsecond
		} else {
			c.SeekMean = 5 * time.Millisecond
		}
	}
	if c.WriteMean <= 0 {
		c.WriteMean = d.WriteMean
	}
	if c.SizeCostPerKB <= 0 {
		c.SizeCostPerKB = d.SizeCostPerKB
	}
	if c.BaseIOWait <= 0 {
		c.BaseIOWait = d.BaseIOWait
	}
	if c.IOWaitJitter < 0 {
		c.IOWaitJitter = 0
	}
	if c.GossipInterval <= 0 {
		c.GossipInterval = d.GossipInterval
	}
	if c.GCMeanInterval <= 0 {
		c.GCMeanInterval = d.GCMeanInterval
	}
	if c.GCMinPause <= 0 {
		c.GCMinPause = d.GCMinPause
	}
	if c.GCMaxPause <= c.GCMinPause {
		c.GCMaxPause = c.GCMinPause + d.GCMaxPause
	}
	if c.CompactInterval <= 0 {
		c.CompactInterval = d.CompactInterval
	}
	if c.CompactDuration <= 0 {
		c.CompactDuration = d.CompactDuration
	}
	if c.CompactIOFactor <= 0 {
		c.CompactIOFactor = d.CompactIOFactor
	}
	if c.CompactIOWait <= 0 {
		c.CompactIOWait = d.CompactIOWait
	}
	if c.SpecRetryQuantile <= 0 {
		c.SpecRetryQuantile = d.SpecRetryQuantile
	}
	if c.SnitchHistory <= 0 {
		c.SnitchHistory = 32
	}
	if c.ReadConsistency <= 0 {
		c.ReadConsistency = 1
	}
	if c.ReadConsistency > c.RF {
		c.ReadConsistency = c.RF
	}
	if c.Disk == SSD && c.CacheMissProb == d.CacheMissProb {
		// SSDs make misses cheap, not rare; keep probability, the cost
		// model handles the difference.
		_ = c
	}
	return c
}

// TimelinePoint is one (completion time, read latency) observation.
type TimelinePoint struct {
	T  time.Duration
	Ms float64
}

// RatePoint samples one coordinator's rate state toward the traced node.
type RatePoint struct {
	T           time.Duration
	Coordinator int
	SRate       float64
	RRate       float64
}

// Result carries the measurements of one cluster run.
type Result struct {
	Strategy string
	Mix      string
	Disk     string

	Reads  stats.Summary // generator-observed read latency, ms
	Writes stats.Summary
	// ReadSample is the raw read latency sample (ms) for ECDFs.
	ReadSample *stats.Sample

	Throughput float64 // completed ops per simulated second
	Ops        int

	// PerNodeReads counts reads served per node per 100 ms window
	// (Fig. 8's "reads serviced"); PerNodeArrivals counts read requests
	// received per node per 100 ms window (Figs. 2 and 9's "requests
	// received"), which is where herd oscillation shows.
	PerNodeReads    []*stats.Windowed
	PerNodeArrivals []*stats.Windowed

	Backpressured      uint64
	SpeculativeRetries uint64

	Timeline     []TimelinePoint
	RateTrace    []RatePoint
	Backpressure []time.Duration // times backpressure engaged (Fig. 13)

	SimDuration time.Duration
}

// MostLoadedNode reports the index of the node that served the most reads
// and its served-reads windowed counter — the paper's Fig. 8 subject.
func (r *Result) MostLoadedNode() (int, *stats.Windowed) {
	best, bestN := 0, -1
	for i, w := range r.PerNodeReads {
		if t := w.Total(); t > bestN {
			best, bestN = i, t
		}
	}
	return best, r.PerNodeReads[best]
}

// MostOscillatingArrivals reports the node whose request-arrival series has
// the highest oscillation index and that series — the Fig. 2/9 subject.
func (r *Result) MostOscillatingArrivals() (int, *stats.Windowed) {
	best, bestV := 0, -1.0
	for i, w := range r.PerNodeArrivals {
		if v := w.OscillationIndex(); v > bestV {
			best, bestV = i, v
		}
	}
	return best, r.PerNodeArrivals[best]
}

// Run executes one cluster simulation.
func Run(cfg Config) *Result {
	cfg = cfg.withDefaults()
	e := newEngine(cfg)
	e.start()
	e.s.Run()
	return e.finish()
}

// engine owns one run.
type engine struct {
	cfg Config
	s   *sim.Sim
	rng *rand.Rand // global decisions (coordinator choice, repair, keys)

	ring   *ring.Ring
	groups [][]core.ServerID
	reg    *core.Registry // cluster-wide server index, shared by all nodes
	nodes  []*node
	gens   []*generator

	keys          workload.KeyChooser
	res           *Result
	opsIn         int // operations issued
	done          int // operations completed
	tLast         int64
	backpressured uint64

	stopped bool
}

// netDelay runs fn after one network hop; hops between a node and itself
// (coordinator reading its own replica) are free.
func (e *engine) netDelay(from, to *node, fn func()) {
	if from != nil && from == to {
		e.s.After(0, fn)
		return
	}
	e.s.AfterDur(e.cfg.NetOneWay, fn)
}

// opDone accounts one completed operation.
func (e *engine) opDone(now int64) {
	e.done++
	e.tLast = now
}

func newEngine(cfg Config) *engine {
	e := &engine{
		cfg: cfg,
		s:   sim.New(),
		rng: sim.RNG(cfg.Seed, 3),
	}
	e.ring = ring.New(cfg.Nodes, cfg.RF)
	e.groups = e.ring.Groups()
	ids := make([]core.ServerID, cfg.Nodes)
	for i := range ids {
		ids[i] = core.ServerID(i)
	}
	e.reg = core.NewRegistry(ids...)
	e.keys = workload.NewScrambled(cfg.Keys, 0.99)
	e.res = &Result{
		Strategy:   cfg.Strategy,
		Mix:        cfg.Mix.Name,
		Disk:       cfg.Disk.String(),
		ReadSample: stats.NewSample(cfg.Ops),
	}
	e.nodes = make([]*node, cfg.Nodes)
	for i := range e.nodes {
		e.nodes[i] = newNode(e, i)
		e.res.PerNodeReads = append(e.res.PerNodeReads, stats.NewWindowed(100*sim.Millisecond))
		e.res.PerNodeArrivals = append(e.res.PerNodeArrivals, stats.NewWindowed(100*sim.Millisecond))
	}
	return e
}

// start arms generators, disturbance processes, gossip and tracing.
func (e *engine) start() {
	cfg := e.cfg
	phases := cfg.Phases
	if len(phases) == 0 {
		phases = []Phase{{Start: 0, Generators: cfg.Generators, Mix: cfg.Mix}}
	}
	gid := 0
	for _, ph := range phases {
		for i := 0; i < ph.Generators; i++ {
			g := newGenerator(e, gid, ph.Mix)
			e.gens = append(e.gens, g)
			start := int64(ph.Start)
			e.s.At(start, g.issueNext)
			gid++
		}
	}
	for _, n := range e.nodes {
		n.scheduleDisturbances()
	}
	e.scheduleGossip()
	if cfg.TraceRates {
		e.scheduleRateTrace()
	}
	if cfg.Duration > 0 {
		e.s.AfterDur(cfg.Duration, func() { e.stopped = true })
	}
}

// shouldStop reports whether issuing must cease.
func (e *engine) shouldStop() bool {
	if e.stopped {
		return true
	}
	return e.cfg.Ops > 0 && e.opsIn >= e.cfg.Ops
}

// running reports whether background processes should keep rescheduling.
func (e *engine) running() bool {
	if e.stopped {
		return false
	}
	if e.cfg.Ops > 0 {
		return e.done < e.cfg.Ops
	}
	return true
}

// scheduleGossip disseminates each node's iowait to every coordinator's
// snitch once per gossip interval (one-hop delayed, as in Cassandra's
// one-second gossip averages).
func (e *engine) scheduleGossip() {
	var tick func()
	tick = func() {
		for _, src := range e.nodes {
			w := src.iowait(e.s.Now())
			id := core.ServerID(src.id)
			for _, dst := range e.nodes {
				if dst == src {
					continue
				}
				dst := dst
				e.s.AfterDur(e.cfg.NetOneWay, func() {
					if ds, ok := dst.sel.Ranker().(*core.DynamicSnitch); ok {
						ds.SetSeverity(id, w)
					}
				})
			}
		}
		if e.running() {
			e.s.AfterDur(e.cfg.GossipInterval, tick)
		}
	}
	e.s.AfterDur(e.cfg.GossipInterval, tick)
}

// scheduleRateTrace samples coordinators' rate state toward the traced node.
func (e *engine) scheduleRateTrace() {
	var tick func()
	tick = func() {
		target := core.ServerID(e.cfg.TraceTarget)
		for _, n := range e.nodes {
			if n.id == e.cfg.TraceTarget {
				continue
			}
			e.res.RateTrace = append(e.res.RateTrace, RatePoint{
				T:           time.Duration(e.s.Now()),
				Coordinator: n.id,
				SRate:       n.sel.SendRate(target),
				RRate:       n.sel.ReceiveRate(target, e.s.Now()),
			})
		}
		if e.running() {
			e.s.After(100*sim.Millisecond, tick)
		}
	}
	e.s.After(100*sim.Millisecond, tick)
}

// finish produces the Result.
func (e *engine) finish() *Result {
	e.res.Reads = e.res.ReadSample.Summarize()
	e.res.Ops = e.done
	e.res.SimDuration = time.Duration(e.tLast)
	if e.tLast > 0 {
		e.res.Throughput = float64(e.done) / (float64(e.tLast) / 1e9)
	}
	ws := stats.NewSample(1024)
	for _, g := range e.gens {
		for _, w := range g.writeLat {
			ws.Add(w)
		}
	}
	e.res.Writes = ws.Summarize()
	e.res.Backpressured = e.backpressured
	return e.res
}
