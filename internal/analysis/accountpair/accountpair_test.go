package accountpair_test

import (
	"testing"

	"c3/internal/analysis/accountpair"
	"c3/internal/analysis/analysistest"
)

func TestAccountPair(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), accountpair.Analyzer, "accountpair")
}
