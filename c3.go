// Package c3 is an implementation of C3 — the adaptive replica selection
// mechanism of Suresh, Canini, Schmid and Feldmann, "C3: Cutting Tail
// Latency in Cloud Data Stores via Adaptive Replica Selection" (NSDI 2015) —
// as a reusable Go library, together with every baseline the paper evaluates
// against.
//
// C3 reduces tail latency in replicated data stores by combining two
// client-side mechanisms:
//
//   - Replica ranking: servers piggyback their queue size and service time
//     on every response; clients score each replica with the cubic function
//     Ψ = R̄ − 1/µ̄ + q̂³/µ̄, where q̂ compensates for the client's own
//     outstanding requests, and prefer the lowest score.
//   - Cubic rate control with backpressure: per-server token buckets whose
//     rates adapt with a CUBIC-style law; requests wait in a per-replica-
//     group backlog when every replica is over its rate.
//
// # Quick start
//
// Embed a Client in your driver or coordinator. On each request, Pick a
// replica from the key's replica group; after each response, feed back the
// server-reported queue size and service time:
//
//	ranker := c3.NewRanker(c3.RankerConfig{ConcurrencyWeight: numClients})
//	client := c3.New(ranker, c3.ClientConfig{RateControl: true})
//
//	server, ok, retryAt := client.Pick(replicas, time.Now().UnixNano())
//	if !ok {
//	    // all replicas over rate: backpressure until retryAt
//	}
//	// ... send to server, on response:
//	client.OnResponse(server, c3.Feedback{
//	    QueueSize:   resp.QueueSize,
//	    ServiceTime: resp.ServiceTime,
//	}, rtt, time.Now().UnixNano())
//
// A request that is cancelled, times out locally, or loses its connection
// before the reply must release its accounting with Client.OnAbandon — never
// synthesize feedback for it. Speculative (hedged) duplicates are recorded
// with Client.PickHedge / Client.OnHedge, which skip the rate controller:
// a hedge duplicates a request it already admitted. Every send must be
// balanced by exactly one OnResponse or OnAbandon, or the outstanding-
// request term of q̂ drifts; Client.Outstanding exposes the count for
// invariant checks.
//
// Everything is driven by explicit timestamps, so the same client runs under
// simulated or wall-clock time. See examples/ for runnable programs, and
// DESIGN.md / EXPERIMENTS.md for the paper reproduction.
package c3

import (
	"c3/internal/core"
	"c3/internal/ratelimit"
)

// ServerID identifies a replica server.
type ServerID = core.ServerID

// Feedback is the per-response server feedback (queue size and service
// time) that drives the ranking.
type Feedback = core.Feedback

// Ranker orders the replicas of a group by preference. The package provides
// the C3 cubic ranker plus every baseline from the paper.
type Ranker = core.Ranker

// RankerConfig tunes the C3 scoring function (EWMA smoothing, concurrency
// weight w, queue exponent b) and optionally names the shared Registry.
type RankerConfig = core.RankerConfig

// Registry interns server IDs to dense indices so rankers and clients keep
// per-server state in flat slices instead of maps. Processes that run many
// clients against one cluster view should construct a single Registry,
// pre-register every server, and share it via RankerConfig.Registry.
type Registry = core.Registry

// CubicRanker is the C3 replica ranking implementation.
type CubicRanker = core.CubicRanker

// Client combines a Ranker with optional per-server cubic rate control: the
// complete client side of C3. Safe for concurrent use.
type Client = core.Client

// ClientConfig configures a Client.
type ClientConfig = core.ClientConfig

// RateConfig tunes the cubic rate controller (δ, β, γ, smax, hysteresis).
type RateConfig = ratelimit.Config

// GroupScheduler provides FIFO backpressure queueing for one replica group
// (Algorithm 1's backlog queue), parameterized by the request payload type.
type GroupScheduler[T any] = core.GroupScheduler[T]

// Dispatch is one (server, item) release from a GroupScheduler.
type Dispatch[T any] = core.Dispatch[T]

// OracleFn exposes instantaneous server state to the Oracle baseline.
type OracleFn = core.OracleFn

// SnitchConfig tunes the Dynamic Snitching baseline.
type SnitchConfig = core.SnitchConfig

// New returns a Client driving the given ranker. Enable
// ClientConfig.RateControl for full C3 (ranking + rate control +
// backpressure); leave it off to use the ranking alone.
func New(r Ranker, cfg ClientConfig) *Client { return core.NewClient(r, cfg) }

// NewRanker returns the C3 cubic ranker. Set ConcurrencyWeight to the number
// of clients performing selection against the same servers (the paper's w).
func NewRanker(cfg RankerConfig) *CubicRanker { return core.NewCubicRanker(cfg) }

// NewRegistry returns a registry with ids pre-interned in argument order.
func NewRegistry(ids ...ServerID) *Registry { return core.NewRegistry(ids...) }

// NewScheduler returns a backpressure scheduler for one replica group.
func NewScheduler[T any](c *Client, group []ServerID) *GroupScheduler[T] {
	return core.NewGroupScheduler[T](c, group)
}

// CubicScore evaluates the raw C3 scoring function Ψ = R̄ − T̄ + q̂^b·T̄
// (times in seconds).
func CubicScore(rbar, tbar, qhat, b float64) float64 {
	return core.CubicScore(rbar, tbar, qhat, b)
}

// DefaultRateConfig returns the paper's §4 rate-controller parameters
// (δ=20 ms, β=0.2, smax=10, hysteresis 2δ, γ tuned for a 100 ms saddle).
func DefaultRateConfig() RateConfig { return ratelimit.DefaultConfig() }

// Baseline selection strategies evaluated by the paper.

// NewLOR returns the least-outstanding-requests baseline.
func NewLOR(seed uint64) Ranker { return core.NewLOR(nil, seed) }

// NewRoundRobin returns the round-robin baseline (combine with rate control
// for the paper's "RR" configuration).
func NewRoundRobin() Ranker { return core.NewRoundRobin(nil) }

// NewRandom returns the uniform random baseline.
func NewRandom(seed uint64) Ranker { return core.NewRandom(seed) }

// NewTwoChoice returns the power-of-two-choices baseline.
func NewTwoChoice(seed uint64) Ranker { return core.NewTwoChoice(nil, seed) }

// NewLeastResponseTime returns the least-smoothed-RTT baseline.
func NewLeastResponseTime(alpha float64, seed uint64) Ranker {
	return core.NewLeastResponseTime(nil, alpha, seed)
}

// NewWeightedRandom returns the inverse-RTT weighted random baseline.
func NewWeightedRandom(alpha float64, seed uint64) Ranker {
	return core.NewWeightedRandom(nil, alpha, seed)
}

// NewOracle returns the perfect-information baseline (simulations only).
func NewOracle(fn OracleFn, seed uint64) Ranker { return core.NewOracle(fn, seed) }

// NewDynamicSnitch returns a model of Cassandra's Dynamic Snitching, the
// paper's §5 baseline.
func NewDynamicSnitch(cfg SnitchConfig) *core.DynamicSnitch {
	return core.NewDynamicSnitch(cfg)
}
