package kvstore

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"c3/internal/ring"
)

// Client is an external (application-side) client of the store. It holds one
// pipelined connection per node and spreads requests across coordinators
// round-robin — the paper's non-token-aware access pattern, where any node
// may coordinate any key.
type Client struct {
	addrs []string

	mu    sync.Mutex
	conns []*rpcConn

	next atomic.Uint64

	// tokenRing, when set, routes each key to its primary replica as
	// coordinator (the Astyanax-style token-aware client of the paper's
	// §7, which avoids overloaded non-replica coordinators).
	tokenRing *ring.Ring
}

// Dial connects a client to the cluster at addrs (connections are
// established lazily).
func Dial(addrs []string) (*Client, error) {
	if len(addrs) == 0 {
		return nil, errors.New("kvstore: no addresses")
	}
	return &Client{
		addrs: append([]string(nil), addrs...),
		conns: make([]*rpcConn, len(addrs)),
	}, nil
}

func (c *Client) conn(i int) (*rpcConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p := c.conns[i]; p != nil && !p.dead() {
		return p, nil
	}
	nc, err := net.DialTimeout("tcp", c.addrs[i], time.Second)
	if err != nil {
		return nil, err
	}
	p := newRPCConn(nc)
	c.conns[i] = p
	return p, nil
}

// DialTokenAware returns a Client that coordinates every operation at the
// key's primary replica instead of round-robining, given the cluster's
// replication factor.
func DialTokenAware(addrs []string, rf int) (*Client, error) {
	c, err := Dial(addrs)
	if err != nil {
		return nil, err
	}
	c.tokenRing = ring.New(len(addrs), rf)
	return c, nil
}

// pick chooses the coordinator for a key: its primary replica when token
// aware, round-robin otherwise.
func (c *Client) pick(key string) int {
	if c.tokenRing != nil {
		return int(c.tokenRing.PrimaryFor([]byte(key)))
	}
	return int(c.next.Add(1)-1) % len(c.addrs)
}

// Get reads key through a coordinator, reporting whether it exists.
func (c *Client) Get(key string) ([]byte, bool, error) {
	var lastErr error
	for attempt := 0; attempt < len(c.addrs); attempt++ {
		p, err := c.conn(c.pick(key))
		if err != nil {
			lastErr = err
			continue
		}
		// nil destination: the value lands in a fresh buffer owned by
		// the application.
		resp, err := p.clientRead(key, nil)
		if err != nil {
			lastErr = err
			continue
		}
		val := resp.Value
		if resp.Found && val == nil {
			val = []byte{} // present but empty: distinguishable from missing
		}
		return val, resp.Found, nil
	}
	return nil, false, lastErr
}

// ErrWriteFailed reports a write no replica acknowledged: the coordinator
// reached its whole replica group and every write failed. The write must
// surface as an error — before the OK flag existed, an all-replicas-down
// write was silently acknowledged.
var ErrWriteFailed = errors.New("kvstore: write failed on every replica")

// Put writes key=val through a coordinator.
func (c *Client) Put(key string, val []byte) error {
	var lastErr error
	for attempt := 0; attempt < len(c.addrs); attempt++ {
		p, err := c.conn(c.pick(key))
		if err != nil {
			lastErr = err
			continue
		}
		resp, err := p.clientWrite(key, val)
		if err != nil {
			lastErr = err
			continue
		}
		if !resp.OK {
			lastErr = ErrWriteFailed
			continue
		}
		return nil
	}
	return lastErr
}

// Close drops all connections.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range c.conns {
		if p != nil {
			p.close()
		}
	}
}
