package kvstore

import (
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"c3/internal/core"
	"c3/internal/wire"
)

// rpcConn is a pipelined request/response connection: many in-flight
// requests multiplex over one TCP stream, matched back by request id. Both
// coordinator→replica links and the external Client use it.
//
// The round trip is allocation-free in steady state: requests are encoded
// into pooled frame buffers and coalesced by the connection's writer
// goroutine; responses are matched through a sharded pending table to pooled
// call records with reusable completion channels, and read values are
// appended directly into the destination buffer the caller supplied.
type rpcConn struct {
	conn net.Conn
	cw   *connWriter

	shards [pendingShards]pendingShard

	isDead atomic.Bool
	nextID atomic.Uint64
}

// pendingShards spreads the pending table's lock across cores (must be a
// power of two).
const pendingShards = 8

type pendingShard struct {
	mu     sync.Mutex
	m      map[uint64]*call
	failed bool
}

// call is one in-flight RPC. Records are pooled; delivery is exactly-once
// (a call is removed from the pending table under its shard lock before it
// is signalled), so a recycled record can never receive a stale response.
type call struct {
	done    chan struct{} // buffered(1); reused across lives
	dst     []byte        // read-value destination: read.Value = append(dst, value...)
	isRead  bool
	isBatch bool
	read    wire.ReadResp
	write   wire.WriteResp
	err     error

	// Event-driven completion (writeAsync): a call carrying a gather is
	// delivered by calling g.complete on the connection's read loop instead
	// of signalling done — no goroutine ever waits on it.
	g    *writeGather
	from core.ServerID

	// Batch results (isBatch). Read values are packed into bbuf (grown from
	// dst) with boffs indexing them — key i's value is bbuf[boffs[i]:
	// boffs[i+1]] and bvers[i] its stored version — so copying them out of
	// the frame buffer regrows at most one allocation, never one per key.
	// bfound/boffs/bvers/boks retain capacity across pooled lives; their
	// contents are valid only until putCall.
	bfound  []bool
	boffs   []int
	bvers   []uint64
	bbuf    []byte
	boks    []bool
	bstatus uint8
	bfb     wire.Feedback

	// Membership control results (ctl != ctlNone; cold path, deep copies).
	ctl  uint8
	ru   *wire.RingUpdate
	ack  wire.RingAck
	page *streamPage
}

// Control-call kinds: which membership response frame the call expects.
const (
	ctlNone  uint8 = iota
	ctlRing        // MsgRingUpdate (the join handshake's response)
	ctlAck         // MsgRingAck (a pushed announcement's receipt)
	ctlChunk       // MsgStreamChunk (a key-range page)
)

// streamPage is a deep-copied MsgStreamChunk — membership streaming is a
// cold path, so copying out of the frame buffer beats pooling complexity.
type streamPage struct {
	status uint8
	epoch  uint64
	done   bool
	keys   []string
	vals   [][]byte
}

var callPool = sync.Pool{New: func() any { return &call{done: make(chan struct{}, 1)} }}

func getCall(isRead bool, dst []byte) *call {
	c := callPool.Get().(*call)
	c.isRead = isRead
	c.dst = dst
	return c
}

func getBatchCall(isRead bool, dst []byte) *call {
	c := getCall(isRead, dst)
	c.isBatch = true
	return c
}

func putCall(c *call) {
	c.dst = nil
	c.read = wire.ReadResp{}
	c.write = wire.WriteResp{}
	c.err = nil
	c.isBatch = false
	c.g = nil
	c.from = 0
	c.bfound = c.bfound[:0]
	c.boffs = c.boffs[:0]
	c.bvers = c.bvers[:0]
	c.bbuf = nil
	c.boks = c.boks[:0]
	c.bstatus = 0
	c.bfb = wire.Feedback{}
	c.ctl = ctlNone
	c.ru = nil
	c.ack = wire.RingAck{}
	c.page = nil
	callPool.Put(c)
}

var (
	errConnDead       = errors.New("kvstore: connection closed")
	errMismatchedResp = errors.New("kvstore: mismatched response type")
)

func newRPCConn(conn net.Conn) *rpcConn {
	p := &rpcConn{conn: conn, cw: newConnWriter(conn)}
	for i := range p.shards {
		p.shards[i].m = make(map[uint64]*call)
	}
	go p.cw.loop()
	go p.readLoop()
	return p
}

func (p *rpcConn) dead() bool { return p.isDead.Load() }

func (p *rpcConn) close() { p.conn.Close() }

func (p *rpcConn) shard(id uint64) *pendingShard { return &p.shards[id&(pendingShards-1)] }

// register installs c under a fresh request id.
func (p *rpcConn) register(c *call) (uint64, error) {
	id := p.nextID.Add(1)
	s := p.shard(id)
	s.mu.Lock()
	if s.failed {
		s.mu.Unlock()
		return 0, errConnDead
	}
	s.m[id] = c
	s.mu.Unlock()
	return id, nil
}

// take removes and returns the call registered under id, or nil if it is
// gone (already delivered or failed).
func (p *rpcConn) take(id uint64) *call {
	s := p.shard(id)
	s.mu.Lock()
	c := s.m[id]
	delete(s.m, id)
	s.mu.Unlock()
	return c
}

// deliver completes a taken call: a waiter-style call is signalled on its
// done channel; a gather-style call (writeAsync) is consumed here — on the
// read loop — by feeding its outcome to the write gather. Every delivery
// site (response matched, mismatched type, failAll) routes through this, so
// a gather leg is completed exactly once no matter how the call resolves.
func deliver(c *call) {
	if g := c.g; g != nil {
		from, ok, transport := c.from, c.write.OK, c.err != nil
		putCall(c)
		g.complete(from, ok, transport)
		return
	}
	c.done <- struct{}{}
}

// readLoop demultiplexes responses to their waiters; on error it fails every
// outstanding call.
func (p *rpcConn) readLoop() {
	r := wire.NewReader(p.conn)
	var items []wire.BatchItem // decode scratch, reused across frames
	var oks []bool
	for {
		typ, payload, err := r.Next()
		if err != nil {
			p.failAll()
			return
		}
		switch typ {
		case wire.MsgReadResp:
			m, err := wire.ParseReadResp(payload) // Value aliases payload
			if err != nil {
				p.failAll()
				return
			}
			c := p.take(m.ID)
			if c == nil {
				continue
			}
			if !c.isRead || c.isBatch {
				c.err = errMismatchedResp
				deliver(c)
				p.failAll()
				return
			}
			// Copy the value out of the frame buffer into the waiter's
			// destination before anything aliasing the frame is published
			// to the call record — c.read must never hold frame memory,
			// even transiently.
			m.Value = append(c.dst, m.Value...)
			c.read = m
			deliver(c)
		case wire.MsgWriteResp:
			m, err := wire.ParseWriteResp(payload)
			if err != nil {
				p.failAll()
				return
			}
			c := p.take(m.ID)
			if c == nil {
				continue
			}
			if c.isRead || c.isBatch || c.ctl != ctlNone {
				c.err = errMismatchedResp
				deliver(c)
				p.failAll()
				return
			}
			c.write = m
			deliver(c)
		case wire.MsgBatchReadResp:
			m, err := wire.ParseBatchReadResp(payload, items[:0]) // Values alias payload
			if err != nil {
				p.failAll()
				return
			}
			items = m.Items
			c := p.take(m.ID)
			if c == nil {
				continue
			}
			if !c.isRead || !c.isBatch {
				c.err = errMismatchedResp
				deliver(c)
				p.failAll()
				return
			}
			// Pack every value into one buffer grown from the waiter's
			// destination, recording offsets — the values must leave the
			// frame buffer before the next Next, and one packed copy beats a
			// per-key allocation.
			total := 0
			for _, it := range m.Items {
				total += len(it.Value)
			}
			buf := c.dst
			if cap(buf)-len(buf) < total {
				grown := make([]byte, len(buf), len(buf)+total)
				copy(grown, buf)
				buf = grown
			}
			found, offs, vers := c.bfound[:0], c.boffs[:0], c.bvers[:0]
			offs = append(offs, len(buf))
			for _, it := range m.Items {
				buf = append(buf, it.Value...)
				found = append(found, it.Found)
				vers = append(vers, it.Version)
				offs = append(offs, len(buf))
			}
			c.bfound, c.boffs, c.bvers, c.bbuf, c.bfb = found, offs, vers, buf, m.FB
			deliver(c)
		case wire.MsgBatchWriteResp:
			m, err := wire.ParseBatchWriteResp(payload, oks[:0])
			if err != nil {
				p.failAll()
				return
			}
			oks = m.OK
			c := p.take(m.ID)
			if c == nil {
				continue
			}
			if c.isRead || !c.isBatch {
				c.err = errMismatchedResp
				deliver(c)
				p.failAll()
				return
			}
			c.boks = append(c.boks[:0], m.OK...)
			c.bstatus = m.Status
			c.bfb = m.FB
			deliver(c)
		case wire.MsgRingUpdate:
			// The response to a join handshake. Deep-copied: announcement
			// addresses alias the frame buffer.
			m, err := wire.ParseRingUpdate(payload)
			if err != nil {
				p.failAll()
				return
			}
			c := p.take(m.ID)
			if c == nil {
				continue
			}
			if c.ctl != ctlRing {
				c.err = errMismatchedResp
				deliver(c)
				p.failAll()
				return
			}
			cp := m
			cp.Nodes = append([]wire.RingNode(nil), m.Nodes...)
			for i := range cp.Nodes {
				cp.Nodes[i].Addr = strings.Clone(cp.Nodes[i].Addr)
			}
			c.ru = &cp
			deliver(c)
		case wire.MsgRingAck:
			m, err := wire.ParseRingAck(payload)
			if err != nil {
				p.failAll()
				return
			}
			c := p.take(m.ID)
			if c == nil {
				continue
			}
			if c.ctl != ctlAck {
				c.err = errMismatchedResp
				deliver(c)
				p.failAll()
				return
			}
			c.ack = m
			deliver(c)
		case wire.MsgStreamChunk:
			m, err := wire.ParseStreamChunk(payload, nil, nil) // aliases payload
			if err != nil {
				p.failAll()
				return
			}
			c := p.take(m.ID)
			if c == nil {
				continue
			}
			if c.ctl != ctlChunk {
				c.err = errMismatchedResp
				deliver(c)
				p.failAll()
				return
			}
			pg := &streamPage{status: m.Status, epoch: m.Epoch, done: m.Done,
				keys: make([]string, len(m.Keys)), vals: make([][]byte, len(m.Values))}
			for i := range m.Keys {
				pg.keys[i] = strings.Clone(m.Keys[i])
				pg.vals[i] = append([]byte(nil), m.Values[i]...)
			}
			c.page = pg
			deliver(c)
		default:
			p.failAll()
			return
		}
	}
}

// failAll severs the connection and fails every outstanding call exactly
// once. Safe to run concurrently with registrations and deliveries: shards
// are marked failed under their locks, so no new call can slip in after its
// shard was drained.
func (p *rpcConn) failAll() {
	p.isDead.Store(true)
	p.conn.Close()
	p.cw.close()
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		s.failed = true
		calls := make([]*call, 0, len(s.m))
		for id, c := range s.m {
			calls = append(calls, c)
			delete(s.m, id)
		}
		s.mu.Unlock()
		for _, c := range calls {
			c.err = errConnDead
			deliver(c)
		}
	}
}

// abort cleans up a registered call whose request never made it out. If the
// call is already claimed (a concurrent failAll), the claimant owns delivery:
// consume its signal so the pooled record carries no stale wakeup.
func (p *rpcConn) abort(c *call, id uint64) {
	if p.take(id) == nil {
		<-c.done
	}
	putCall(c)
}

// read performs an internal (replica-local) read RPC. The response value is
// appended to dst; passing nil allocates a fresh caller-owned buffer.
func (p *rpcConn) read(key string, dst []byte) (wire.ReadResp, error) {
	return p.readTyped(wire.MsgReadInternal, wire.LevelOne, key, dst)
}

// clientRead performs a coordinated read RPC at a consistency level
// (external client use).
func (p *rpcConn) clientRead(cl uint8, key string, dst []byte) (wire.ReadResp, error) {
	return p.readTyped(wire.MsgRead, cl, key, dst)
}

// readAsync dispatches an internal read RPC without blocking. The returned
// call is complete once its done channel signals; the caller must then
// consume it with readResult exactly once (directly, or from a goroutine
// that adopts the call if the caller stops waiting — the hedged-read
// escalation path).
func (p *rpcConn) readAsync(key string, dst []byte) (*call, error) {
	return p.readAsyncTyped(wire.MsgReadInternal, wire.LevelOne, key, dst)
}

func (p *rpcConn) readAsyncTyped(typ, cl uint8, key string, dst []byte) (*call, error) {
	c := getCall(true, dst)
	id, err := p.register(c)
	if err != nil {
		putCall(c)
		return nil, err
	}
	fb := getBuf()
	b, err := wire.AppendReadReq((*fb)[:0], typ, wire.ReadReq{ID: id, CL: cl, Key: key})
	if err != nil {
		putBuf(fb)
		p.abort(c, id)
		return nil, err
	}
	*fb = b
	if err := p.cw.enqueue(fb); err != nil {
		p.abort(c, id)
		return nil, err
	}
	return c, nil
}

// readResult consumes a completed call (its done channel has signalled) and
// recycles the record.
func readResult(c *call) (wire.ReadResp, error) {
	resp, err := c.read, c.err
	putCall(c)
	return resp, err
}

func (p *rpcConn) readTyped(typ, cl uint8, key string, dst []byte) (wire.ReadResp, error) {
	c, err := p.readAsyncTyped(typ, cl, key, dst)
	if err != nil {
		return wire.ReadResp{}, err
	}
	<-c.done
	return readResult(c)
}

// batchReadAsync dispatches a batch read RPC without blocking; the sub-batch
// is one frame, one pooled call record, one pending-table entry — however
// many keys it carries. The returned call's batch fields (bfound/boffs/bbuf)
// are complete once done signals; the caller consumes them and then recycles
// the record with putCall exactly once. Read values are packed into a buffer
// grown from dst.
func (p *rpcConn) batchReadAsync(typ, cl uint8, keys []string, dst []byte) (*call, error) {
	c := getBatchCall(true, dst)
	id, err := p.register(c)
	if err != nil {
		putCall(c)
		return nil, err
	}
	fb := getBuf()
	b, err := wire.AppendBatchReadReq((*fb)[:0], typ, wire.BatchReadReq{ID: id, CL: cl, Keys: keys})
	if err != nil {
		putBuf(fb)
		p.abort(c, id)
		return nil, err
	}
	*fb = b
	if err := p.cw.enqueue(fb); err != nil {
		p.abort(c, id)
		return nil, err
	}
	return c, nil
}

// batchRead performs a blocking batch read RPC. See batchReadAsync for the
// ownership contract of the returned call.
func (p *rpcConn) batchRead(typ, cl uint8, keys []string, dst []byte) (*call, error) {
	c, err := p.batchReadAsync(typ, cl, keys, dst)
	if err != nil {
		return nil, err
	}
	<-c.done
	if c.err != nil {
		err := c.err
		putCall(c)
		return nil, err
	}
	return c, nil
}

// batchWrite performs a blocking batch write RPC at the given level and
// version stamp, appending the per-key acks to oks (pass a reused scratch
// slice; nil allocates). The returned status classifies a coordinator-level
// failure (StatusOK on success and on plain per-key failures).
func (p *rpcConn) batchWrite(typ, cl uint8, ver uint64, keys []string, vals [][]byte, oks []bool) ([]bool, uint8, wire.Feedback, error) {
	c := getBatchCall(false, nil)
	id, err := p.register(c)
	if err != nil {
		putCall(c)
		return oks, 0, wire.Feedback{}, err
	}
	fb := getBuf()
	b, err := wire.AppendBatchWriteReq((*fb)[:0], typ,
		wire.BatchWriteReq{ID: id, CL: cl, Version: ver, Keys: keys, Values: vals})
	if err != nil {
		putBuf(fb)
		p.abort(c, id)
		return oks, 0, wire.Feedback{}, err
	}
	*fb = b
	if err := p.cw.enqueue(fb); err != nil {
		p.abort(c, id)
		return oks, 0, wire.Feedback{}, err
	}
	<-c.done
	oks = append(oks[:0], c.boks...)
	status, feedback, err := c.bstatus, c.bfb, c.err
	putCall(c)
	return oks, status, feedback, err
}

// write performs an internal write RPC carrying the coordinator's version
// stamp (the replica applies it under the last-write-wins guard). del marks
// a guarded tombstone: the replica deletes instead of storing (val ignored).
func (p *rpcConn) write(key string, val []byte, ver uint64, del bool) (wire.WriteResp, error) {
	return p.writeTyped(wire.MsgWriteInternal, wire.LevelOne, ver, key, val, del)
}

// writeAsync dispatches an internal write RPC whose completion is delivered
// straight to g.complete(from, ...) — on this connection's read loop for a
// response, or wherever failAll runs for connection death. No goroutine is
// spawned and nothing ever waits: this is the event-driven leg of the write
// fan-out. A non-nil error means the dispatch never started and the caller
// still owns the gather leg (it must complete it as a transport failure); a
// nil return transfers that responsibility to the delivery machinery, even
// when the frame never made it out (the writer only fails alongside the
// connection, whose failAll drains the pending table).
func (p *rpcConn) writeAsync(key string, val []byte, ver uint64, del bool, g *writeGather, from core.ServerID) error {
	c := getCall(false, nil)
	c.g, c.from = g, from
	id, err := p.register(c)
	if err != nil {
		c.g = nil
		putCall(c)
		return err
	}
	fb := getBuf()
	b, err := wire.AppendWriteReq((*fb)[:0], wire.MsgWriteInternal,
		wire.WriteReq{ID: id, CL: wire.LevelOne, Version: ver, Key: key, Value: val, Del: del})
	if err != nil {
		putBuf(fb)
		if c2 := p.take(id); c2 != nil {
			c2.g = nil
			putCall(c2)
			return err
		}
		return nil // a concurrent failAll claimed the call and will deliver it
	}
	*fb = b
	if err := p.cw.enqueue(fb); err != nil {
		// The writer closes only as part of connection teardown: failAll is
		// running (or about to) and delivers every registered call.
		return nil
	}
	return nil
}

// clientWrite performs a coordinated write RPC at a consistency level; the
// coordinator stamps the version. del requests a coordinated delete.
func (p *rpcConn) clientWrite(cl uint8, key string, val []byte, del bool) (wire.WriteResp, error) {
	return p.writeTyped(wire.MsgWrite, cl, 0, key, val, del)
}

// ctlSend registers and dispatches one membership control call: enc encodes
// the request frame under the assigned id. The caller waits on the returned
// call's done channel (ctlWait applies a timeout) and recycles it.
func (p *rpcConn) ctlSend(ctl uint8, enc func(dst []byte, id uint64) ([]byte, error)) (*call, uint64, error) {
	c := getCall(false, nil)
	c.ctl = ctl
	id, err := p.register(c)
	if err != nil {
		putCall(c)
		return nil, 0, err
	}
	fb := getBuf()
	b, err := enc((*fb)[:0], id)
	if err != nil {
		putBuf(fb)
		p.abort(c, id)
		return nil, 0, err
	}
	*fb = b
	if err := p.cw.enqueue(fb); err != nil {
		p.abort(c, id)
		return nil, 0, err
	}
	return c, id, nil
}

var errCtlTimeout = errors.New("kvstore: membership RPC timed out")

// ctlWait blocks for the call's completion up to d; on timeout the call is
// withdrawn from the pending table (a late response is dropped harmlessly).
func (p *rpcConn) ctlWait(c *call, id uint64, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-c.done:
		return nil
	case <-t.C:
		p.abort(c, id)
		return errCtlTimeout
	}
}

// pushRing announces a topology to the peer and waits for its ack.
func (p *rpcConn) pushRing(u wire.RingUpdate, timeout time.Duration) (wire.RingAck, error) {
	c, id, err := p.ctlSend(ctlAck, func(dst []byte, id uint64) ([]byte, error) {
		u.ID = id
		return wire.AppendRingUpdate(dst, u)
	})
	if err != nil {
		return wire.RingAck{}, err
	}
	if err := p.ctlWait(c, id, timeout); err != nil {
		return wire.RingAck{}, err
	}
	ack, err := c.ack, c.err
	putCall(c)
	return ack, err
}

// joinReq asks the peer to admit addr into the cluster, returning the
// transition topology it announces.
func (p *rpcConn) joinReq(addr string, timeout time.Duration) (*wire.RingUpdate, error) {
	c, id, err := p.ctlSend(ctlRing, func(dst []byte, id uint64) ([]byte, error) {
		return wire.AppendJoinReq(dst, wire.JoinReq{ID: id, Addr: addr})
	})
	if err != nil {
		return nil, err
	}
	if err := p.ctlWait(c, id, timeout); err != nil {
		return nil, err
	}
	u, err := c.ru, c.err
	putCall(c)
	if err != nil {
		return nil, err
	}
	return u, nil
}

// streamPull requests one key-range page from the peer.
func (p *rpcConn) streamPull(req wire.StreamReq) (*streamPage, error) {
	c, id, err := p.ctlSend(ctlChunk, func(dst []byte, id uint64) ([]byte, error) {
		req.ID = id
		return wire.AppendStreamReq(dst, req)
	})
	if err != nil {
		return nil, err
	}
	if err := p.ctlWait(c, id, joinReqTimeout); err != nil {
		return nil, err
	}
	page, err := c.page, c.err
	putCall(c)
	if err != nil {
		return nil, err
	}
	return page, nil
}

func (p *rpcConn) writeTyped(typ, cl uint8, ver uint64, key string, val []byte, del bool) (wire.WriteResp, error) {
	c := getCall(false, nil)
	id, err := p.register(c)
	if err != nil {
		putCall(c)
		return wire.WriteResp{}, err
	}
	fb := getBuf()
	b, err := wire.AppendWriteReq((*fb)[:0], typ,
		wire.WriteReq{ID: id, CL: cl, Version: ver, Key: key, Value: val, Del: del})
	if err != nil {
		putBuf(fb)
		p.abort(c, id)
		return wire.WriteResp{}, err
	}
	*fb = b
	if err := p.cw.enqueue(fb); err != nil {
		p.abort(c, id)
		return wire.WriteResp{}, err
	}
	<-c.done
	resp, err := c.write, c.err
	putCall(c)
	return resp, err
}
