package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"c3/internal/analysis"
)

// loadSrc parses and type-checks one import-free source file.
func loadSrc(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := analysis.NewInfo()
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f, pkg, info
}

// lineOf returns the 1-based line of the unique occurrence of marker.
func lineOf(t *testing.T, src, marker string) int {
	t.Helper()
	i := strings.Index(src, marker)
	if i < 0 || strings.Index(src[i+1:], marker) >= 0 {
		t.Fatalf("marker %q not unique in source", marker)
	}
	return 1 + strings.Count(src[:i], "\n")
}

// boomAnalyzer flags every call to the local function boom.
var boomAnalyzer = &analysis.Analyzer{
	Name: "boom",
	Doc:  "flags calls to boom",
	Run: func(p *analysis.Pass) error {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "boom" {
						p.Reportf(call.Pos(), "boom call")
					}
				}
				return true
			})
		}
		return nil
	},
}

const suppressionSrc = `package p

func boom() {}

func plain() {
	boom() // finding: no directive
}

func trailing() {
	boom() //lint:allow boom accepted risk on this line
}

func ownLine() {
	//lint:allow boom accepted risk on the next line
	boom()
}

func noReason() {
	//lint:allow boom
	boom() // finding: the directive above is malformed and not honored
}

func wrongAnalyzer() {
	//lint:allow quux reasons do not transfer across analyzers
	boom() // finding: directive names another analyzer, and goes stale
}
`

func TestSuppressions(t *testing.T) {
	fset, f, pkg, info := loadSrc(t, suppressionSrc)
	findings, err := analysis.RunPackage(fset, []*ast.File{f}, pkg, info, []*analysis.Analyzer{boomAnalyzer})
	if err != nil {
		t.Fatal(err)
	}

	var boomLines []int
	var lintMsgs []string
	for _, fd := range findings {
		switch fd.Analyzer {
		case "boom":
			boomLines = append(boomLines, fd.Pos.Line)
		case "lint":
			lintMsgs = append(lintMsgs, fd.Message)
		default:
			t.Errorf("finding from unexpected analyzer: %s", fd)
		}
	}

	wantBoom := []int{
		lineOf(t, suppressionSrc, "boom() // finding: no directive"),
		lineOf(t, suppressionSrc, "boom() // finding: the directive above is malformed"),
		lineOf(t, suppressionSrc, "boom() // finding: directive names another analyzer"),
	}
	if len(boomLines) != len(wantBoom) {
		t.Fatalf("boom findings on lines %v, want %v", boomLines, wantBoom)
	}
	for i := range wantBoom {
		if boomLines[i] != wantBoom[i] {
			t.Errorf("boom finding %d on line %d, want %d", i, boomLines[i], wantBoom[i])
		}
	}

	if len(lintMsgs) != 2 {
		t.Fatalf("lint findings %q, want a malformed and an unused report", lintMsgs)
	}
	var sawMalformed, sawUnused bool
	for _, msg := range lintMsgs {
		switch {
		case strings.Contains(msg, "malformed suppression"):
			sawMalformed = true
		case strings.Contains(msg, `unused suppression for "quux"`) &&
			strings.Contains(msg, "reasons do not transfer across analyzers"):
			sawUnused = true
		}
	}
	if !sawMalformed || !sawUnused {
		t.Errorf("lint findings %q missing malformed/unused report", lintMsgs)
	}

	for i := 1; i < len(findings); i++ {
		a, b := findings[i-1].Pos, findings[i].Pos
		if a.Line > b.Line || (a.Line == b.Line && a.Column > b.Column) {
			t.Errorf("findings not sorted: %s before %s", findings[i-1], findings[i])
		}
	}
}

// TestSuppressionScope pins the directive placement rules: a trailing
// directive covers its own line only, an own-line directive the next line
// only — never further.
func TestSuppressionScope(t *testing.T) {
	src := `package p

func boom() {}

func twoCalls() {
	//lint:allow boom covers only the first call
	boom()
	boom() // finding: one line past the directive
}
`
	fset, f, pkg, info := loadSrc(t, src)
	findings, err := analysis.RunPackage(fset, []*ast.File{f}, pkg, info, []*analysis.Analyzer{boomAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || findings[0].Analyzer != "boom" {
		t.Fatalf("findings = %v, want exactly the second call flagged", findings)
	}
	if want := lineOf(t, src, "boom() // finding"); findings[0].Pos.Line != want {
		t.Errorf("finding on line %d, want %d", findings[0].Pos.Line, want)
	}
}
