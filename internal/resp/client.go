package resp

import (
	"bufio"
	"net"
	"time"
)

// Client is a minimal RESP client — enough for the CI gateway smoke, the
// package tests, and c3cluster's probe mode. One request in flight at a time;
// callers serialize.
type Client struct {
	c  net.Conn
	br *bufio.Reader
	wb []byte
}

// DialClient connects to a RESP server.
func DialClient(addr string, timeout time.Duration) (*Client, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Client{c: c, br: bufio.NewReader(c)}, nil
}

// Do issues one command (args as strings) and returns the reply.
func (c *Client) Do(args ...string) (Reply, error) {
	c.wb = AppendArray(c.wb[:0], len(args))
	for _, a := range args {
		c.wb = AppendBulk(c.wb, []byte(a))
	}
	if _, err := c.c.Write(c.wb); err != nil {
		return Reply{}, err
	}
	return ReadReply(c.br)
}

// Close closes the connection.
func (c *Client) Close() error { return c.c.Close() }
