// Quickstart: embed the C3 replica selector in a client talking to three
// (simulated, in-process) servers with different and shifting speeds.
//
// The program runs 3,000 requests. Midway, the fast server degrades sharply.
// Watch the selection counts follow the feedback: C3 prefers the fast
// server, then abandons it within a handful of responses when it slows.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand/v2"
	"time"

	"c3"
)

// fakeServer is a toy replica: a service-time distribution plus a queue
// depth that grows with concurrent load.
type fakeServer struct {
	name    string
	svcMean time.Duration
	queue   float64
	rng     *rand.Rand
}

// serve simulates handling one request and returns the feedback a real
// server would piggyback plus the simulated response time.
func (s *fakeServer) serve() (c3.Feedback, time.Duration) {
	svc := time.Duration(s.rng.ExpFloat64() * float64(s.svcMean))
	// Queue drains between requests and grows when service is slow.
	s.queue = 0.8*s.queue + svc.Seconds()*200
	rtt := svc + time.Duration(s.queue)*time.Millisecond/4 + 500*time.Microsecond
	return c3.Feedback{QueueSize: s.queue, ServiceTime: svc}, rtt
}

func main() {
	servers := map[c3.ServerID]*fakeServer{
		1: {name: "fast", svcMean: 1 * time.Millisecond, rng: rand.New(rand.NewPCG(1, 1))},
		2: {name: "medium", svcMean: 4 * time.Millisecond, rng: rand.New(rand.NewPCG(2, 2))},
		3: {name: "slow", svcMean: 10 * time.Millisecond, rng: rand.New(rand.NewPCG(3, 3))},
	}
	group := []c3.ServerID{1, 2, 3}

	// One C3 client with rate control — the full Algorithm 1 stack.
	client := c3.New(
		c3.NewRanker(c3.RankerConfig{ConcurrencyWeight: 1, Seed: 42}),
		c3.ClientConfig{RateControl: true, Rate: c3.DefaultRateConfig()},
	)

	counts := map[string]map[c3.ServerID]int{"before": {}, "after": {}}
	phase := "before"
	now := int64(0)
	for i := 0; i < 3000; i++ {
		if i == 1500 {
			// The fast server hits a rough patch (think: GC pause,
			// compaction, noisy neighbour).
			servers[1].svcMean = 40 * time.Millisecond
			phase = "after"
			fmt.Println("--- server 1 (fast) degrades to 40ms mean service ---")
		}
		s, ok, retryAt := client.Pick(group, now)
		if !ok {
			now = retryAt // backpressure: wait for a rate token
			continue
		}
		counts[phase][s]++
		fb, rtt := servers[s].serve()
		now += int64(rtt)
		client.OnResponse(s, fb, rtt, now)
	}

	for _, ph := range []string{"before", "after"} {
		fmt.Printf("%-7s selections:", ph)
		for _, id := range group {
			fmt.Printf("  %s=%d", servers[id].name, counts[ph][id])
		}
		fmt.Println()
	}
	fmt.Println("C3 shifted away from the degraded server using only piggybacked feedback.")
}
