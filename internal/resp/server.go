package resp

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
)

// Backend is what a Server fronts: the five data commands the gateway maps
// onto the store's point and batch paths, plus an INFO payload. Argument
// slices alias the connection's parse arena and are valid only for the call —
// implementations retain copies. Returned values are owned by the caller.
//
// The miss-vs-empty contract: Get/MGet report existence through the found
// flag, never through value length — a present empty value is ([]byte{},
// true) and a missing key is (nil, false), and the server encodes them as $0
// and $-1 respectively.
type Backend interface {
	Get(key []byte) (val []byte, found bool, err error)
	Set(key, val []byte) error
	Del(key []byte) (deleted bool, err error)
	MGet(keys [][]byte) (vals [][]byte, found []bool, err error)
	MSet(keys, vals [][]byte) error
	Info() string
}

// Server accepts RESP connections and drives a Backend. Each connection runs
// as a goroutine pair mirroring the kvstore conn-writer pattern: the read
// loop decodes, executes, and enqueues encoded replies; the write loop drains
// the queue and flushes once it runs dry, so pipelined commands coalesce into
// few write syscalls while replies stay in command order.
type Server struct {
	b Backend

	mu     sync.Mutex
	lns    map[net.Listener]struct{}
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer returns a Server fronting b.
func NewServer(b Backend) *Server {
	return &Server{
		b:     b,
		lns:   make(map[net.Listener]struct{}),
		conns: make(map[net.Conn]struct{}),
	}
}

// errServerClosed reports an accept loop ended by Close.
var errServerClosed = errors.New("resp: server closed")

// Serve accepts connections on ln until the listener fails or the server is
// closed. It blocks; run it on its own goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errServerClosed
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.lns, ln)
		s.mu.Unlock()
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return errServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return errServerClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Close stops every listener, severs every connection, and waits for the
// connection goroutines to drain.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	for ln := range s.lns {
		ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// replyPool recycles encoded-reply buffers between the read and write loops.
var replyPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

const replyRetainCap = 64 << 10

func getReply() *[]byte { return replyPool.Get().(*[]byte) }

func putReply(b *[]byte) {
	if b == nil || cap(*b) > replyRetainCap {
		return
	}
	*b = (*b)[:0]
	replyPool.Put(b)
}

// handle runs one connection's goroutine pair until the client disconnects,
// errs at the protocol level, or sends QUIT.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	out := make(chan *[]byte, 128)
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		w := bufio.NewWriterSize(conn, 64<<10)
		for b := range out {
			w.Write(*b)
			putReply(b)
			if len(out) == 0 {
				if w.Flush() != nil {
					// Drain without writing; the read loop notices the dead
					// connection on its own.
					for b := range out {
						putReply(b)
					}
					return
				}
			}
		}
		w.Flush()
	}()
	defer wwg.Wait()
	defer close(out)

	r := NewReader(conn)
	var scratch []byte // upper-cased command name
	for {
		args, err := r.Next()
		if err != nil {
			if errors.Is(err, ErrProtocol) {
				rb := getReply()
				*rb = AppendError((*rb)[:0], "ERR "+err.Error())
				out <- rb
			}
			return
		}
		rb := getReply()
		var quit bool
		*rb, scratch, quit = s.dispatch((*rb)[:0], scratch, args)
		out <- rb
		if quit {
			return
		}
	}
}

// upperInto upper-cases b into dst (grown as needed) without allocating in
// steady state.
func upperInto(dst, b []byte) []byte {
	dst = append(dst[:0], b...)
	for i, c := range dst {
		if 'a' <= c && c <= 'z' {
			dst[i] = c - ('a' - 'A')
		}
	}
	return dst
}

// dispatch executes one command and appends its encoded reply to dst. quit
// reports a QUIT (reply enqueued, then the connection closes).
func (s *Server) dispatch(dst, scratch []byte, args [][]byte) (_, _ []byte, quit bool) {
	scratch = upperInto(scratch, args[0])
	cmd := string(scratch) // does not allocate in switch comparisons below
	switch cmd {
	case "PING":
		if len(args) >= 2 {
			return AppendBulk(dst, args[1]), scratch, false
		}
		return AppendSimple(dst, "PONG"), scratch, false
	case "ECHO":
		if len(args) != 2 {
			return wrongArity(dst, "echo"), scratch, false
		}
		return AppendBulk(dst, args[1]), scratch, false
	case "GET":
		if len(args) != 2 {
			return wrongArity(dst, "get"), scratch, false
		}
		val, found, err := s.b.Get(args[1])
		if err != nil {
			return AppendError(dst, "ERR "+err.Error()), scratch, false
		}
		if !found {
			return AppendNil(dst), scratch, false
		}
		return AppendBulk(dst, val), scratch, false
	case "SET":
		// SET key value [EX ...|PX ...|NX|XX] — options are accepted and
		// ignored (the store has no TTLs), which keeps redis-benchmark and
		// memtier command lines working.
		if len(args) < 3 {
			return wrongArity(dst, "set"), scratch, false
		}
		if err := s.b.Set(args[1], args[2]); err != nil {
			return AppendError(dst, "ERR "+err.Error()), scratch, false
		}
		return AppendSimple(dst, "OK"), scratch, false
	case "DEL":
		if len(args) < 2 {
			return wrongArity(dst, "del"), scratch, false
		}
		n := int64(0)
		for _, k := range args[1:] {
			deleted, err := s.b.Del(k)
			if err != nil {
				return AppendError(dst, "ERR "+err.Error()), scratch, false
			}
			if deleted {
				n++
			}
		}
		return AppendInt(dst, n), scratch, false
	case "MGET":
		if len(args) < 2 {
			return wrongArity(dst, "mget"), scratch, false
		}
		vals, found, err := s.b.MGet(args[1:])
		if err != nil {
			return AppendError(dst, "ERR "+err.Error()), scratch, false
		}
		dst = AppendArray(dst, len(args)-1)
		for i := range vals {
			if i < len(found) && found[i] {
				dst = AppendBulk(dst, vals[i])
			} else {
				dst = AppendNil(dst)
			}
		}
		return dst, scratch, false
	case "MSET":
		if len(args) < 3 || len(args)%2 != 1 {
			return wrongArity(dst, "mset"), scratch, false
		}
		pairs := (len(args) - 1) / 2
		keys := make([][]byte, 0, pairs)
		vals := make([][]byte, 0, pairs)
		for i := 1; i+1 < len(args); i += 2 {
			keys = append(keys, args[i])
			vals = append(vals, args[i+1])
		}
		if err := s.b.MSet(keys, vals); err != nil {
			return AppendError(dst, "ERR "+err.Error()), scratch, false
		}
		return AppendSimple(dst, "OK"), scratch, false
	case "INFO":
		return AppendBulk(dst, []byte(s.b.Info())), scratch, false
	case "CONFIG":
		// CONFIG GET answers benchmark-compatible stubs; everything else is
		// an acked no-op.
		if len(args) >= 3 && string(upperInto(nil, args[1])) == "GET" {
			dst = AppendArray(dst, 2)
			dst = AppendBulk(dst, args[2])
			switch string(upperInto(nil, args[2])) {
			case "MAXMEMORY":
				return AppendBulk(dst, []byte("0")), scratch, false
			case "APPENDONLY":
				return AppendBulk(dst, []byte("no")), scratch, false
			default: // "save" and friends
				return AppendBulk(dst, nil), scratch, false
			}
		}
		return AppendSimple(dst, "OK"), scratch, false
	case "SELECT":
		return AppendSimple(dst, "OK"), scratch, false
	case "COMMAND":
		return AppendArray(dst, 0), scratch, false
	case "QUIT":
		return AppendSimple(dst, "OK"), scratch, true
	}
	return AppendError(dst, fmt.Sprintf("ERR unknown command '%s'", args[0])), scratch, false
}

func wrongArity(dst []byte, cmd string) []byte {
	return AppendError(dst, fmt.Sprintf("ERR wrong number of arguments for '%s' command", cmd))
}
