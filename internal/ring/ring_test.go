package ring

import (
	"fmt"
	"testing"
	"testing/quick"

	"c3/internal/core"
	"c3/internal/sim"
	"c3/internal/workload"
)

func TestMurmurDeterministic(t *testing.T) {
	a1, a2 := Murmur3_x64_128([]byte("hello, world"), 0)
	b1, b2 := Murmur3_x64_128([]byte("hello, world"), 0)
	if a1 != b1 || a2 != b2 {
		t.Fatal("murmur3 not deterministic")
	}
	c1, c2 := Murmur3_x64_128([]byte("hello, world!"), 0)
	if a1 == c1 && a2 == c2 {
		t.Fatal("murmur3 collides on near-identical inputs")
	}
	d1, d2 := Murmur3_x64_128([]byte("hello, world"), 1)
	if a1 == d1 && a2 == d2 {
		t.Fatal("seed has no effect")
	}
}

func TestMurmurKnownVectors(t *testing.T) {
	// Reference vectors from the canonical C++ implementation
	// (MurmurHash3_x64_128, seed 0).
	h1, h2 := Murmur3_x64_128(nil, 0)
	if h1 != 0 || h2 != 0 {
		t.Fatalf("murmur3(\"\") = %x,%x; want 0,0", h1, h2)
	}
}

func TestMurmurAllTailLengths(t *testing.T) {
	// Exercise every tail-switch arm: lengths 0..32. Outputs must be
	// pairwise distinct and stable.
	seen := map[[2]uint64]int{}
	data := make([]byte, 32)
	for i := range data {
		data[i] = byte(i * 7)
	}
	for n := 0; n <= 32; n++ {
		h1, h2 := Murmur3_x64_128(data[:n], 42)
		k := [2]uint64{h1, h2}
		if prev, dup := seen[k]; dup {
			t.Fatalf("length %d collides with length %d", n, prev)
		}
		seen[k] = n
	}
}

func TestMurmurAvalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := []byte("the quick brown fox jumps over the lazy dog")
	h1a, _ := Murmur3_x64_128(base, 0)
	mod := append([]byte(nil), base...)
	mod[0] ^= 1
	h1b, _ := Murmur3_x64_128(mod, 0)
	diff := h1a ^ h1b
	bits := 0
	for ; diff != 0; diff &= diff - 1 {
		bits++
	}
	if bits < 16 || bits > 48 {
		t.Fatalf("avalanche flipped %d/64 bits, want ~32", bits)
	}
}

func TestRingReplicaCountAndDistinctness(t *testing.T) {
	r := New(15, 3)
	if r.Nodes() != 15 || r.RF() != 3 {
		t.Fatal("ring shape wrong")
	}
	rng := sim.RNG(1, 1)
	for i := 0; i < 1000; i++ {
		key := []byte(workload.Key(rng.Uint64()))
		reps := r.ReplicasFor(key, nil)
		if len(reps) != 3 {
			t.Fatalf("got %d replicas, want 3", len(reps))
		}
		seen := map[core.ServerID]bool{}
		for _, s := range reps {
			if seen[s] {
				t.Fatalf("duplicate replica in %v", reps)
			}
			seen[s] = true
			if int(s) < 0 || int(s) >= 15 {
				t.Fatalf("replica %d out of range", s)
			}
		}
	}
}

func TestRingDeterministicMapping(t *testing.T) {
	r := New(15, 3)
	key := []byte("user0000000000000000042")
	a := r.ReplicasFor(key, nil)
	b := r.ReplicasFor(key, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("replica mapping not deterministic")
		}
	}
	if r.PrimaryFor(key) != a[0] {
		t.Fatal("PrimaryFor disagrees with ReplicasFor[0]")
	}
}

func TestRingReplicasAreRingSuccessors(t *testing.T) {
	// With equal tokens and one token per node, replicas must be
	// consecutive nodes on the ring.
	r := New(10, 3)
	rng := sim.RNG(2, 2)
	for i := 0; i < 200; i++ {
		key := []byte(workload.Key(rng.Uint64()))
		reps := r.ReplicasFor(key, nil)
		for j := 1; j < len(reps); j++ {
			if int(reps[j]) != (int(reps[j-1])+1)%10 {
				t.Fatalf("replicas %v are not ring successors", reps)
			}
		}
	}
}

func TestRingLoadBalance(t *testing.T) {
	// Equal token ranges + murmur keys → near-uniform primary ownership.
	r := New(15, 3)
	counts := make([]int, 15)
	rng := sim.RNG(3, 3)
	const draws = 60000
	for i := 0; i < draws; i++ {
		counts[int(r.PrimaryFor([]byte(workload.Key(rng.Uint64()))))]++
	}
	want := draws / 15
	for i, c := range counts {
		if c < want*7/10 || c > want*13/10 {
			t.Fatalf("node %d owns %d keys, want ≈%d (±30%%)", i, c, want)
		}
	}
}

func TestRingGroups(t *testing.T) {
	r := New(15, 3)
	groups := r.Groups()
	if len(groups) != 15 {
		t.Fatalf("got %d groups, want 15", len(groups))
	}
	seen := map[string]bool{}
	for _, g := range groups {
		if len(g) != 3 {
			t.Fatalf("group %v has wrong size", g)
		}
		k := fmt.Sprint(g)
		if seen[k] {
			t.Fatalf("duplicate group %v", g)
		}
		seen[k] = true
	}
}

func TestGroupIndexConsistentWithReplicas(t *testing.T) {
	r := New(15, 3)
	groups := r.Groups()
	rng := sim.RNG(4, 4)
	for i := 0; i < 500; i++ {
		key := []byte(workload.Key(rng.Uint64()))
		tok := Token(key)
		gi := r.GroupIndexFor(tok)
		reps := r.ReplicasForToken(tok, nil)
		g := groups[gi]
		for j := range g {
			if g[j] != reps[j] {
				t.Fatalf("group index %d -> %v, but replicas are %v", gi, g, reps)
			}
		}
	}
}

func TestNewWithTokens(t *testing.T) {
	r := NewWithTokens(map[int64]core.ServerID{
		-100: 0,
		0:    1,
		100:  2,
	}, 2)
	// Token -50 lands on owner of token 0 (node 1), then node 2.
	got := r.ReplicasForToken(-50, nil)
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("replicas = %v, want [1 2]", got)
	}
	// Wrap-around: token 101 > max token → wraps to first (node 0).
	got = r.ReplicasForToken(101, nil)
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("wrapped replicas = %v, want [0 1]", got)
	}
}

func TestNewWithTokensSkipsDuplicateOwners(t *testing.T) {
	// One node holding two adjacent tokens must not appear twice in a
	// replica set.
	r := NewWithTokens(map[int64]core.ServerID{
		0:  0,
		10: 0,
		20: 1,
		30: 2,
	}, 3)
	got := r.ReplicasForToken(-5, nil)
	seen := map[core.ServerID]bool{}
	for _, s := range got {
		if seen[s] {
			t.Fatalf("duplicate owner in %v", got)
		}
		seen[s] = true
	}
}

func TestRingPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero nodes": func() { New(0, 1) },
		"rf>n":       func() { New(3, 4) },
		"rf=0":       func() { New(3, 0) },
		"no tokens":  func() { NewWithTokens(nil, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: every key maps to exactly RF distinct in-range replicas.
func TestRingCoverageProperty(t *testing.T) {
	r := New(12, 3)
	f := func(key []byte) bool {
		reps := r.ReplicasFor(key, nil)
		if len(reps) != 3 {
			return false
		}
		seen := map[core.ServerID]bool{}
		for _, s := range reps {
			if s < 0 || int(s) >= 12 || seen[s] {
				return false
			}
			seen[s] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkReplicasFor(b *testing.B) {
	r := New(15, 3)
	key := []byte("user0000000000000424242")
	dst := make([]core.ServerID, 0, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = r.ReplicasFor(key, dst)
	}
}

func BenchmarkMurmur1KB(b *testing.B) {
	data := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		Murmur3_x64_128(data, 0)
	}
}
