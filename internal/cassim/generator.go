package cassim

import (
	"math/rand/v2"
	"time"

	"c3/internal/sim"
	"c3/internal/workload"
)

// generator is one closed-loop YCSB worker thread: it keeps exactly one
// operation outstanding (issue → wait → record → issue), which is why
// latency improvements translate directly into throughput gains (Fig. 7).
type generator struct {
	e   *engine
	id  int
	mix workload.Mix
	rng *rand.Rand

	writeLat []float64
}

func newGenerator(e *engine, id int, mix workload.Mix) *generator {
	return &generator{
		e:   e,
		id:  id,
		mix: mix,
		rng: sim.RNG(e.cfg.Seed, 5000+uint64(id)),
	}
}

// issueNext creates and dispatches the generator's next operation, choosing
// a uniformly random coordinator per request (the paper's non-token-aware
// client behaviour).
func (g *generator) issueNext() {
	if g.e.shouldStop() {
		return
	}
	g.e.opsIn++
	op := g.mix.Choose(g.rng)
	item := g.e.keys.Next(g.rng)
	size := g.e.cfg.Sizer.Size(g.rng)
	var coord *node
	if g.e.cfg.TokenAware {
		// Token-aware client (§7 extension): coordinate at one of the
		// key's own replicas, saving the extra hop.
		grp := g.e.groups[g.e.ring.GroupIndexFor(tokenOf(item))]
		coord = g.e.nodes[int(grp[g.rng.IntN(len(grp))])]
	} else {
		coord = g.e.nodes[g.rng.IntN(len(g.e.nodes))]
	}
	tIssued := g.e.s.Now()
	if op == workload.OpRead {
		rop := &readOp{gen: g, key: item, sizeB: size, tIssued: tIssued}
		g.e.netDelay(nil, nil, func() {
			rop.tStart = g.e.s.Now()
			coord.coordinateRead(rop)
		})
	} else {
		wop := &writeOp{gen: g, tIssued: tIssued}
		g.e.netDelay(nil, nil, func() {
			wop.tStart = g.e.s.Now()
			coord.coordinateWrite(wop, item, size)
		})
	}
}

// onReadDone records the generator-observed read latency and closes the loop.
func (g *generator) onReadDone(op *readOp, _ float64) {
	now := g.e.s.Now()
	ms := float64(now-op.tIssued) / 1e6
	g.e.res.ReadSample.Add(ms)
	if g.e.cfg.RecordTimeline {
		g.e.res.Timeline = append(g.e.res.Timeline, TimelinePoint{
			T: time.Duration(now), Ms: ms,
		})
	}
	g.e.opDone(now)
	g.issueNext()
}

// onWriteDone records the update latency and closes the loop.
func (g *generator) onWriteDone(ms float64) {
	g.writeLat = append(g.writeLat, ms)
	g.e.opDone(g.e.s.Now())
	g.issueNext()
}
