// Package core implements the C3 replica-selection algorithm (NSDI'15):
// cubic replica ranking driven by piggybacked server feedback, per-server
// cubic rate control, and replica-group backpressure scheduling. It also
// implements every baseline the paper evaluates against — least-outstanding
// requests (LOR), rate-limited round-robin (RR), an oracle, Cassandra-style
// Dynamic Snitching, and the "did not fare well" §6 extras (uniform random,
// least-response-time, weighted random, power-of-two-choices).
//
// The package is deliberately substrate-neutral: nothing here reads a wall
// clock, sleeps, or spawns goroutines. Every method takes an explicit
// timestamp (int64 nanoseconds), so the identical code runs inside the
// discrete-event simulators (internal/queuesim, internal/cassim) and inside
// the live TCP key-value store (internal/kvstore).
package core

import (
	"math/rand/v2"
	"time"
)

// ServerID identifies a replica server within a cluster.
type ServerID int32

// Feedback is the per-response server feedback that C3 piggybacks on every
// reply (§3.1): the server's queue size sampled as the response is
// dispatched, and the service time of the request.
type Feedback struct {
	// QueueSize is the number of requests pending at the server when the
	// response was sent.
	QueueSize float64
	// ServiceTime is how long the server spent serving the request.
	ServiceTime time.Duration
}

// Ranker orders the replicas of a group by preference. Implementations keep
// per-server client-side state (EWMAs, outstanding counts, histories) and are
// not safe for concurrent use; Client adds locking for multi-goroutine
// substrates.
type Ranker interface {
	// Name identifies the strategy in experiment output ("C3", "LOR", ...).
	Name() string
	// Rank writes group into dst in preference order (best first) and
	// returns dst[:len(group)]. dst must not alias group and must have
	// capacity ≥ len(group); pass nil to allocate.
	Rank(dst, group []ServerID, now int64) []ServerID
	// OnSend records that a request was dispatched to s at time now.
	OnSend(s ServerID, now int64)
	// OnResponse records a response from s carrying feedback fb, observed
	// after round-trip time rtt, at time now.
	OnResponse(s ServerID, fb Feedback, rtt time.Duration, now int64)
	// OnAbandon records that a request previously recorded with OnSend will
	// never produce an observable response — it was cancelled, timed out
	// locally, or its connection died before the reply. Implementations
	// release outstanding-request accounting for s without feeding their
	// latency or queue estimators: an abandoned request carries no server
	// feedback, and synthesizing one from the client's own timeout would
	// poison the EWMAs. Strategies that keep no in-flight state no-op.
	OnAbandon(s ServerID, now int64)
}

// BatchRanker is an optional extension a Ranker may implement for multi-key
// (batch) traffic: the same events as OnSend/OnResponse/OnAbandon, weighted
// by the number of keys the dispatch carries. A replica holding a 32-key
// sub-batch is truthfully 32 reads of in-flight demand, and the single
// feedback sample piggybacked on its response describes the cost of all 32 —
// so outstanding accounting moves by n and the feedback EWMAs fold the sample
// in with weight n. Client falls back to n repeated point calls for rankers
// that do not implement it.
type BatchRanker interface {
	// OnSendN records a dispatch of n keys to s at time now.
	OnSendN(s ServerID, n int, now int64)
	// OnResponseN records an n-key response from s: outstanding accounting
	// drops by n and fb folds into the estimators with weight n.
	OnResponseN(s ServerID, n int, fb Feedback, rtt time.Duration, now int64)
	// OnAbandonN releases n keys of outstanding accounting toward s without
	// feeding the estimators (see Ranker.OnAbandon).
	OnAbandonN(s ServerID, n int, now int64)
}

// BestPicker is an optional fast path a Ranker may implement: Best returns
// the replica Rank would place first — with the same tie-breaking
// distribution — without materializing the full ordering. Client.Pick uses it
// to skip sorting entirely in the common case where the top replica is within
// its send rate.
type BestPicker interface {
	Best(group []ServerID, now int64) (s ServerID, ok bool)
}

// RegistryHolder is implemented by rankers that key per-server state by a
// Registry's dense indices. Client shares the ranker's registry for its
// limiter table so both sides agree on indices.
type RegistryHolder interface {
	Registry() *Registry
}

// OutstandingTracker is implemented by rankers that count in-flight requests
// per server (CubicRanker, LOR, TwoChoice). Client.Outstanding uses it to
// expose the accounting invariant — after every request completes or is
// abandoned, each server's count must return to zero — to failure-scenario
// tests and the tail benchmark's drift check.
type OutstandingTracker interface {
	Outstanding(s ServerID) float64
}

// prepare copies group into dst, allocating if needed.
func prepare(dst, group []ServerID) []ServerID {
	if cap(dst) < len(group) {
		dst = make([]ServerID, len(group))
	}
	dst = dst[:len(group)]
	copy(dst, group)
	return dst
}

// seconds converts a duration to float64 seconds.
func seconds(d time.Duration) float64 { return float64(d) / float64(time.Second) }

// scored pairs a server with its score inside ranking scratch buffers.
type scored struct {
	s     ServerID
	score float64
}

// shuffleScored Fisher–Yates-shuffles sc so that a following stable sort
// breaks score ties uniformly at random.
func shuffleScored(r *rand.Rand, sc []scored) {
	for i := len(sc) - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		sc[i], sc[j] = sc[j], sc[i]
	}
}

// insertionSortScored stably sorts sc by ascending score, in place. Replica
// groups are replication-factor sized (≤ a handful), where insertion sort
// beats the generic sort by a wide margin and allocates nothing.
func insertionSortScored(sc []scored) {
	for i := 1; i < len(sc); i++ {
		x := sc[i]
		j := i - 1
		for j >= 0 && sc[j].score > x.score {
			sc[j+1] = sc[j]
			j--
		}
		sc[j+1] = x
	}
}

// rankScored applies the shared ordering pipeline — random tie-break shuffle,
// stable in-place sort — and writes the resulting server order into dst.
func rankScored(r *rand.Rand, dst []ServerID, sc []scored) {
	shuffleScored(r, sc)
	insertionSortScored(sc)
	for i := range sc {
		dst[i] = sc[i].s
	}
}

// grown extends sl so that index i is valid, filling new slots with mk's
// value (nil mk fills zero values) — the growth step of every dense
// registry-indexed state table. Steady state (i already covered) is a single
// length check.
func grown[T any](sl []T, i int, mk func() T) []T {
	for len(sl) <= i {
		var v T
		if mk != nil {
			v = mk()
		}
		sl = append(sl, v)
	}
	return sl
}

// bestScored returns the index of the minimum-score entry among the first n
// scores produced by score(i), breaking ties uniformly at random — the same
// tie distribution as shuffle + stable sort, at O(n) with no scratch.
func bestScored(r *rand.Rand, n int, score func(int) float64) int {
	bi := 0
	bs := score(0)
	ties := 1
	for i := 1; i < n; i++ {
		s := score(i)
		switch {
		case s < bs:
			bi, bs, ties = i, s, 1
		case s == bs:
			ties++
			if r.IntN(ties) == 0 {
				bi = i
			}
		}
	}
	return bi
}
