// Package resp implements the subset of RESP2 (the Redis serialization
// protocol) the gateway speaks: command decoding on the server side, reply
// encoding, and a minimal client for tests, smoke probes, and tooling.
//
// The command Reader follows internal/wire's zero-copy contract: the argument
// slices returned by Next alias the Reader's internal arena and are valid
// only until the next call. The decoder is strict — multibulk counts and bulk
// lengths must be canonical ASCII decimals (no leading zeros, no signs) — so
// every successfully decoded array-form command re-encodes bit-exactly via
// AppendCommand, the invariant FuzzRESPDecode pins.
package resp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Protocol bounds. Commands beyond these are protocol errors: the connection
// is answered with -ERR and closed, exactly like a malformed frame.
const (
	// MaxArgs bounds the number of arguments in one command.
	MaxArgs = 1 << 16
	// MaxBulk bounds one bulk argument's byte length.
	MaxBulk = 16 << 20
	// MaxInline bounds one inline command line.
	MaxInline = 1 << 16
)

// ErrProtocol reports a malformed command. The connection cannot resync after
// one (framing is lost) and must close.
var ErrProtocol = errors.New("resp: protocol error")

func protoErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrProtocol, fmt.Sprintf(format, args...))
}

// Reader decodes commands from a connection. Not safe for concurrent use.
type Reader struct {
	r    *bufio.Reader
	buf  []byte // argument arena, reused across commands
	offs []int  // argument boundaries within buf (len = args+1)
	args [][]byte
	inl  bool // last command was inline (not canonical array form)
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 64<<10), offs: make([]int, 0, 8)}
}

// Inline reports whether the last command returned by Next was inline rather
// than array form. Inline commands do not re-encode bit-exactly.
func (r *Reader) Inline() bool { return r.inl }

// line reads one CRLF-terminated line, returning it without the terminator.
// The slice aliases the bufio buffer and is valid only until the next read.
func (r *Reader) line() ([]byte, error) {
	b, err := r.r.ReadSlice('\n')
	if err != nil {
		if err == bufio.ErrBufferFull {
			return nil, protoErr("line exceeds %d bytes", MaxInline)
		}
		return nil, err
	}
	if len(b) < 2 || b[len(b)-2] != '\r' {
		return nil, protoErr("line not CRLF-terminated")
	}
	return b[:len(b)-2], nil
}

// parseLen parses a canonical non-negative decimal: digits only, no leading
// zeros (except "0" itself). Strictness is what makes decode→re-encode
// bit-exact.
func parseLen(b []byte) (int, error) {
	if len(b) == 0 || len(b) > 10 {
		return 0, protoErr("bad length %q", b)
	}
	if b[0] == '0' && len(b) > 1 {
		return 0, protoErr("non-canonical length %q", b)
	}
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, protoErr("bad length %q", b)
		}
		n = n*10 + int(c-'0')
	}
	return n, nil
}

// finish materializes the arg slices over the (now stable) arena.
func (r *Reader) finish() [][]byte {
	r.args = r.args[:0]
	for i := 0; i+1 < len(r.offs); i++ {
		r.args = append(r.args, r.buf[r.offs[i]:r.offs[i+1]:r.offs[i+1]])
	}
	return r.args
}

// Next decodes one command and returns its arguments. The returned slices
// alias the Reader's arena and are valid only until the next call — retainers
// must copy. io.EOF is returned verbatim on a clean connection close.
func (r *Reader) Next() ([][]byte, error) {
	r.buf, r.offs = r.buf[:0], append(r.offs[:0], 0)
	first, err := r.line()
	if err != nil {
		return nil, err
	}
	if len(first) == 0 {
		return nil, protoErr("empty command line")
	}
	if first[0] != '*' {
		// Inline command: fields split on spaces, for telnet-style probing.
		r.inl = true
		if len(first) > MaxInline {
			return nil, protoErr("inline command exceeds %d bytes", MaxInline)
		}
		for i := 0; i < len(first); {
			for i < len(first) && first[i] == ' ' {
				i++
			}
			if i == len(first) {
				break
			}
			j := i
			for j < len(first) && first[j] != ' ' {
				j++
			}
			r.buf = append(r.buf, first[i:j]...)
			r.offs = append(r.offs, len(r.buf))
			i = j
		}
		if len(r.offs) == 1 {
			return nil, protoErr("empty inline command")
		}
		return r.finish(), nil
	}
	r.inl = false
	n, err := parseLen(first[1:])
	if err != nil {
		return nil, err
	}
	if n < 1 || n > MaxArgs {
		return nil, protoErr("multibulk count %d outside [1, %d]", n, MaxArgs)
	}
	for i := 0; i < n; i++ {
		hdr, err := r.line()
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
		if len(hdr) == 0 || hdr[0] != '$' {
			return nil, protoErr("expected bulk header, got %q", hdr)
		}
		ln, err := parseLen(hdr[1:])
		if err != nil {
			return nil, err
		}
		if ln > MaxBulk {
			return nil, protoErr("bulk of %d bytes exceeds %d", ln, MaxBulk)
		}
		at := len(r.buf)
		r.buf = append(r.buf, make([]byte, ln+2)...)
		if _, err := io.ReadFull(r.r, r.buf[at:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
		if r.buf[at+ln] != '\r' || r.buf[at+ln+1] != '\n' {
			return nil, protoErr("bulk not CRLF-terminated")
		}
		r.buf = r.buf[:at+ln]
		r.offs = append(r.offs, len(r.buf))
	}
	return r.finish(), nil
}

// --- reply encoding --------------------------------------------------------

var crlf = []byte("\r\n")

// AppendSimple appends a simple-string reply (+s).
func AppendSimple(dst []byte, s string) []byte {
	dst = append(dst, '+')
	dst = append(dst, s...)
	return append(dst, crlf...)
}

// AppendError appends an error reply (-msg).
func AppendError(dst []byte, msg string) []byte {
	dst = append(dst, '-')
	dst = append(dst, msg...)
	return append(dst, crlf...)
}

// AppendInt appends an integer reply (:n).
func AppendInt(dst []byte, n int64) []byte {
	dst = append(dst, ':')
	dst = strconv.AppendInt(dst, n, 10)
	return append(dst, crlf...)
}

// AppendBulk appends a bulk-string reply ($len\r\nbytes). A nil and an empty
// slice both encode as $0 — use AppendNil for the absent value; the two are
// distinct states on the wire and must never collapse (the miss-vs-empty
// contract the gateway tests pin).
func AppendBulk(dst []byte, b []byte) []byte {
	dst = append(dst, '$')
	dst = strconv.AppendInt(dst, int64(len(b)), 10)
	dst = append(dst, crlf...)
	dst = append(dst, b...)
	return append(dst, crlf...)
}

// AppendNil appends the null bulk reply ($-1) — the RESP2 "no such key".
func AppendNil(dst []byte) []byte {
	return append(dst, "$-1\r\n"...)
}

// AppendArray appends an array header (*n); the caller appends n replies.
func AppendArray(dst []byte, n int) []byte {
	dst = append(dst, '*')
	dst = strconv.AppendInt(dst, int64(n), 10)
	return append(dst, crlf...)
}

// AppendCommand appends a command in canonical array-of-bulk-strings form —
// the encoder the Reader's strict decode round-trips with bit-exactly.
func AppendCommand(dst []byte, args [][]byte) []byte {
	dst = AppendArray(dst, len(args))
	for _, a := range args {
		dst = AppendBulk(dst, a)
	}
	return dst
}

// --- reply decoding (client side) ------------------------------------------

// Reply is one decoded server reply.
type Reply struct {
	Kind  byte   // '+', '-', ':', '$', '*'
	IsNil bool   // null bulk ($-1) or null array (*-1)
	Str   string // simple, error, and bulk payloads
	Int   int64  // integer replies
	Elems []Reply
}

// Err returns the reply as an error when it is an error reply.
func (r Reply) Err() error {
	if r.Kind == '-' {
		return errors.New(r.Str)
	}
	return nil
}

// ReadReply decodes one reply. Unlike the command Reader it copies payloads
// (client convenience beats allocation discipline here).
func ReadReply(br *bufio.Reader) (Reply, error) {
	line, err := readReplyLine(br)
	if err != nil {
		return Reply{}, err
	}
	if len(line) == 0 {
		return Reply{}, protoErr("empty reply line")
	}
	kind, rest := line[0], line[1:]
	switch kind {
	case '+', '-':
		return Reply{Kind: kind, Str: string(rest)}, nil
	case ':':
		n, err := strconv.ParseInt(string(rest), 10, 64)
		if err != nil {
			return Reply{}, protoErr("bad integer %q", rest)
		}
		return Reply{Kind: kind, Int: n}, nil
	case '$':
		if string(rest) == "-1" {
			return Reply{Kind: kind, IsNil: true}, nil
		}
		ln, err := parseLen(rest)
		if err != nil || ln > MaxBulk {
			return Reply{}, protoErr("bad bulk length %q", rest)
		}
		b := make([]byte, ln+2)
		if _, err := io.ReadFull(br, b); err != nil {
			return Reply{}, err
		}
		if b[ln] != '\r' || b[ln+1] != '\n' {
			return Reply{}, protoErr("bulk not CRLF-terminated")
		}
		return Reply{Kind: kind, Str: string(b[:ln])}, nil
	case '*':
		if string(rest) == "-1" {
			return Reply{Kind: kind, IsNil: true}, nil
		}
		n, err := parseLen(rest)
		if err != nil || n > MaxArgs {
			return Reply{}, protoErr("bad array length %q", rest)
		}
		out := Reply{Kind: kind, Elems: make([]Reply, 0, n)}
		for i := 0; i < n; i++ {
			e, err := ReadReply(br)
			if err != nil {
				return Reply{}, err
			}
			out.Elems = append(out.Elems, e)
		}
		return out, nil
	}
	return Reply{}, protoErr("unknown reply type %q", kind)
}

func readReplyLine(br *bufio.Reader) ([]byte, error) {
	b, err := br.ReadSlice('\n')
	if err != nil {
		if err == bufio.ErrBufferFull {
			return nil, protoErr("reply line too long")
		}
		return nil, err
	}
	if len(b) < 2 || b[len(b)-2] != '\r' {
		return nil, protoErr("reply line not CRLF-terminated")
	}
	return b[:len(b)-2], nil
}
