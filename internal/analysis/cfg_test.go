package analysis_test

import (
	"go/ast"
	"go/types"
	"testing"

	"c3/internal/analysis"
)

const cfgSrc = `package p

func acquire() {}
func release() {}

func balanced(c bool) {
	acquire()
	if c {
		release()
		return
	}
	release()
}

func leaky(c bool) {
	acquire()
	if c {
		return
	}
	release()
}

func panicPath(c bool) {
	acquire()
	if !c {
		panic("x")
	}
	release()
}

func loopEscape(xs []bool) {
	acquire()
	for _, x := range xs {
		if x {
			continue
		}
	}
	release()
}
`

func funcBody(t *testing.T, f *ast.File, name string) *ast.BlockStmt {
	t.Helper()
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd.Body
		}
	}
	t.Fatalf("function %s not found", name)
	return nil
}

func callStmt(t *testing.T, body *ast.BlockStmt, name string) ast.Stmt {
	t.Helper()
	var found ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		if call, ok := es.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name && found == nil {
				found = es
			}
		}
		return true
	})
	if found == nil {
		t.Fatalf("no call to %s", name)
	}
	return found
}

func releaseHit(info *types.Info) func(*analysis.Node) bool {
	return func(n *analysis.Node) bool {
		return analysis.NodeContainsCall(info, n, false, func(call *ast.CallExpr) bool {
			_, name, _ := analysis.CalleeName(info, call)
			return name == "release"
		})
	}
}

func TestAllPathsPass(t *testing.T) {
	_, f, _, info := loadSrc(t, cfgSrc)
	term := analysis.Terminator(info)
	for _, tc := range []struct {
		fn   string
		want bool
	}{
		{"balanced", true},
		{"leaky", false},
		{"panicPath", true}, // the panic path never reaches Exit, so it cannot fail the rule
		{"loopEscape", true},
	} {
		g := analysis.BuildCFG(funcBody(t, f, tc.fn), term)
		if got := g.AllPathsPass(releaseHit(info)); got != tc.want {
			t.Errorf("%s: AllPathsPass = %v, want %v", tc.fn, got, tc.want)
		}
	}
}

func TestReachesExitAvoiding(t *testing.T) {
	_, f, _, info := loadSrc(t, cfgSrc)
	term := analysis.Terminator(info)
	for _, tc := range []struct {
		fn   string
		want bool
	}{
		{"balanced", false},
		{"leaky", true}, // the early return escapes without a release
		{"panicPath", false},
	} {
		body := funcBody(t, f, tc.fn)
		g := analysis.BuildCFG(body, term)
		from := callStmt(t, body, "acquire")
		if got := g.ReachesExitAvoiding(from, releaseHit(info)); got != tc.want {
			t.Errorf("%s: ReachesExitAvoiding = %v, want %v", tc.fn, got, tc.want)
		}
	}
}

// TestWalkFromStops checks that a true return prunes the walk at that node:
// stopping on the release calls in balanced leaves the then-branch return
// statement unvisited.
func TestWalkFromStops(t *testing.T) {
	_, f, _, info := loadSrc(t, cfgSrc)
	body := funcBody(t, f, "balanced")
	g := analysis.BuildCFG(body, analysis.Terminator(info))
	hit := releaseHit(info)

	releases := 0
	sawReturn := false
	g.WalkFrom(callStmt(t, body, "acquire"), func(n *analysis.Node) bool {
		if _, ok := n.Stmt.(*ast.ReturnStmt); ok {
			sawReturn = true
		}
		if hit(n) {
			releases++
			return true
		}
		return false
	})
	if releases != 2 {
		t.Errorf("visited %d release nodes, want both branches", releases)
	}
	if sawReturn {
		t.Error("walk continued past a stopping node into the return statement")
	}
}
