// Package load type-checks Go packages for the c3vet analyzers without any
// dependency outside the standard library: it shells out to `go list -deps
// -test -json` for the package graph, parses every package from source, and
// type-checks the closure in dependency order with an in-memory importer.
// This replaces golang.org/x/tools/go/packages, which the build environment
// does not carry.
//
// Compiled-code conveniences are deliberately avoided: the standard library
// is type-checked from GOROOT source too (with CGO_ENABLED=0 so every file
// is plain Go), which costs a few seconds once per invocation and requires
// no build cache cooperation.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"c3/internal/analysis"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	// ImportPath is the go list package ID (test variants carry the
	// " [pkg.test]" suffix).
	ImportPath string
	// ForTest is the original import path when this is a test variant.
	ForTest string
	Dir      string
	Fset     *token.FileSet
	Files    []*ast.File
	Types    *types.Package
	Info     *types.Info
	// Module reports whether the package belongs to the main module — the
	// analyzers' target set.
	Module bool
}

type listPkg struct {
	ImportPath string
	ForTest    string
	Dir        string
	Standard   bool
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Module     *struct{ Path, Dir string }
	Error      *struct{ Err string }
}

// Load lists patterns (plus -deps -test) in dir and type-checks the whole
// closure, returning the type-checked main-module packages that match the
// requested patterns. When a package has a test variant, the variant (a
// strict superset of the plain package's files) is returned instead of the
// plain package, so test files are analyzed exactly as `go vet` would.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-deps", "-test",
		"-json=ImportPath,ForTest,Dir,Standard,GoFiles,Imports,ImportMap,Module,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var listed []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		p := new(listPkg)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("go list decode: %v", err)
		}
		listed = append(listed, p)
	}

	fset := token.NewFileSet()
	checked := map[string]*types.Package{"unsafe": types.Unsafe}
	var result []*Package
	// Packages whose plain form is shadowed by a test variant.
	shadowed := make(map[string]bool)
	for _, p := range listed {
		if p.ForTest != "" && strings.HasSuffix(p.ImportPath, ".test]") && !strings.HasSuffix(p.ImportPath, "_test ["+p.ForTest+".test]") {
			shadowed[p.ForTest] = true
		}
	}

	for _, p := range listed {
		if p.ImportPath == "unsafe" {
			continue
		}
		if strings.HasSuffix(p.ImportPath, ".test") {
			// Synthesized test-main binaries reference generated files in
			// the build cache; nothing in them is ours to analyze, and no
			// real package imports them.
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			path := name
			if !filepath.IsAbs(path) {
				path = filepath.Join(p.Dir, name)
			}
			af, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %v", path, err)
			}
			files = append(files, af)
		}
		imp := importerFunc(func(path string) (*types.Package, error) {
			if mapped, ok := p.ImportMap[path]; ok {
				path = mapped
			}
			if q, ok := checked[path]; ok {
				return q, nil
			}
			// Standard-library vendored imports (net -> vendor/golang.org/x/...)
			// are listed under their vendor/ prefix.
			if q, ok := checked["vendor/"+path]; ok {
				return q, nil
			}
			return nil, fmt.Errorf("package %q not in dependency order (importing %s)", path, p.ImportPath)
		})
		isModule := p.Module != nil && !p.Standard
		info := analysis.NewInfo()
		var firstErr error
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				if firstErr == nil {
					firstErr = err
				}
			},
		}
		tp, _ := conf.Check(strings.TrimSuffix(p.ImportPath, " ["+p.ForTest+".test]"), fset, files, info)
		if firstErr != nil && isModule {
			// Standard-library quirks are tolerated (the analyzers never run
			// there); errors in our own module are real and fatal.
			return nil, fmt.Errorf("typecheck %s: %v", p.ImportPath, firstErr)
		}
		checked[p.ImportPath] = tp
		if !isModule {
			continue
		}
		if p.ForTest == "" && shadowed[p.ImportPath] {
			continue // the test variant carries these files plus the tests
		}
		result = append(result, &Package{
			ImportPath: p.ImportPath,
			ForTest:    p.ForTest,
			Dir:        p.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tp,
			Info:       info,
			Module:     true,
		})
	}
	return result, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
